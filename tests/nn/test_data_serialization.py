"""Tests for datasets, data loaders, and checkpoint (de)serialization."""

import numpy as np
import pytest

from repro.nn.data import ArrayDataset, DataLoader, train_val_split
from repro.nn.layers import Linear, Sequential, ReLU
from repro.nn.serialization import load_state, save_state
from repro.nn.tensor import Tensor


class TestArrayDataset:
    def test_length_and_indexing(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 2)
        assert len(ds) == 10
        x, y = ds[np.array([1, 3])]
        np.testing.assert_allclose(x, [1, 3])
        np.testing.assert_allclose(y, [2, 6])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(5), np.arange(6))

    def test_empty_args_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset()


class TestTrainValSplit:
    def test_partition_sizes(self):
        ds = ArrayDataset(np.arange(100))
        train, val = train_val_split(ds, val_fraction=0.2, seed=0)
        assert len(train) == 80 and len(val) == 20

    def test_disjoint_and_complete(self):
        ds = ArrayDataset(np.arange(50))
        train, val = train_val_split(ds, val_fraction=0.3, seed=1)
        merged = np.sort(np.concatenate([train.arrays[0], val.arrays[0]]))
        np.testing.assert_allclose(merged, np.arange(50))

    def test_invalid_fraction(self):
        ds = ArrayDataset(np.arange(10))
        with pytest.raises(ValueError):
            train_val_split(ds, val_fraction=0.0)


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ds = ArrayDataset(np.arange(23))
        dl = DataLoader(ds, batch_size=5, shuffle=True, seed=0)
        seen = np.concatenate([b[0] for b in dl])
        np.testing.assert_allclose(np.sort(seen), np.arange(23))
        assert len(dl) == 5

    def test_drop_last(self):
        ds = ArrayDataset(np.arange(23))
        dl = DataLoader(ds, batch_size=5, drop_last=True, seed=0)
        batches = list(dl)
        assert len(batches) == 4
        assert all(len(b[0]) == 5 for b in batches)

    def test_no_shuffle_preserves_order(self):
        ds = ArrayDataset(np.arange(10))
        dl = DataLoader(ds, batch_size=4, shuffle=False)
        first = next(iter(dl))[0]
        np.testing.assert_allclose(first, [0, 1, 2, 3])

    def test_shuffle_varies_across_epochs(self):
        ds = ArrayDataset(np.arange(100))
        dl = DataLoader(ds, batch_size=100, shuffle=True, seed=0)
        e1 = next(iter(dl))[0]
        e2 = next(iter(dl))[0]
        assert not np.array_equal(e1, e2)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.arange(3)), batch_size=0)


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        net = Sequential(Linear(4, 8, seed=0), ReLU(), Linear(8, 2, seed=1))
        path = tmp_path / "model.npz"
        save_state(net, path)

        clone = Sequential(Linear(4, 8, seed=9), ReLU(), Linear(8, 2, seed=9))
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert not np.allclose(net(x).data, clone(x).data)
        load_state(clone, path)
        np.testing.assert_allclose(net(x).data, clone(x).data)

    def test_wrong_architecture_rejected(self, tmp_path):
        net = Linear(4, 8, seed=0)
        path = tmp_path / "model.npz"
        save_state(net, path)
        other = Linear(4, 9, seed=0)
        with pytest.raises((KeyError, ValueError)):
            load_state(other, path)


class TestSerializationHardening:
    """PR 5 satellite: actionable errors and atomic writes."""

    def test_unreadable_file_is_a_clear_error(self, tmp_path):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"PK\x03\x04 truncated zip")
        with pytest.raises(ValueError, match="cannot read checkpoint"):
            load_state(Linear(4, 8, seed=0), path)

    def test_missing_file_is_a_clear_error(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read checkpoint"):
            load_state(Linear(4, 8, seed=0), tmp_path / "nope.npz")

    def test_missing_and_unexpected_keys_are_named(self, tmp_path):
        # A checkpoint of a shallower model: the deep model's later layers
        # are missing; nothing is unexpected.
        path = tmp_path / "shallow.npz"
        save_state(Sequential(Linear(4, 8, seed=0)), path)
        deep = Sequential(Linear(4, 8, seed=0), ReLU(), Linear(8, 2, seed=1))
        with pytest.raises(ValueError, match="different architecture"):
            load_state(deep, path)
        # And the reverse: the deep checkpoint has unexpected keys.
        save_state(deep, path)
        with pytest.raises(ValueError, match="unexpected keys"):
            load_state(Sequential(Linear(4, 8, seed=0)), path)

    def test_shape_mismatch_names_the_parameter(self, tmp_path):
        path = tmp_path / "mismatch.npz"
        save_state(Linear(4, 8, seed=0), path)
        wider = Linear(4, 9, seed=0)
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state(wider, path)
        # The module is untouched: validation runs before any assignment.
        before = {k: v.copy() for k, v in Linear(4, 9, seed=0).state_dict().items()}
        try:
            load_state(wider, path)
        except ValueError:
            pass
        for key, value in wider.state_dict().items():
            np.testing.assert_array_equal(value, before[key])

    def test_save_is_atomic(self, tmp_path):
        # Overwriting an existing checkpoint leaves no temp litter, and the
        # result is the complete new archive.
        path = tmp_path / "model.npz"
        save_state(Linear(4, 8, seed=0), path)
        new = Linear(4, 8, seed=7)
        save_state(new, path)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.npz"]
        clone = Linear(4, 8, seed=0)
        load_state(clone, path)
        np.testing.assert_array_equal(
            clone.state_dict()["weight"], new.state_dict()["weight"])
