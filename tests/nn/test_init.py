"""Tests for weight-initialization schemes."""

import numpy as np
import pytest

from repro.nn.init import _fans, he_normal, xavier_uniform


class TestFans:
    def test_2d(self):
        assert _fans((4, 8)) == (4, 8)

    def test_1d(self):
        assert _fans((5,)) == (5, 5)

    def test_conv_like(self):
        assert _fans((4, 8, 3)) == (12, 24)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            _fans(())


class TestXavier:
    def test_bound_respected(self):
        rng = np.random.default_rng(0)
        w = xavier_uniform((100, 200), rng)
        bound = np.sqrt(6.0 / 300)
        assert np.all(np.abs(w) <= bound)
        assert w.shape == (100, 200)

    def test_variance_scaling(self):
        rng = np.random.default_rng(0)
        small = xavier_uniform((10, 10), rng).std()
        large = xavier_uniform((1000, 1000), rng).std()
        assert large < small  # bigger fans -> smaller weights

    def test_gain(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        base = xavier_uniform((50, 50), rng1)
        scaled = xavier_uniform((50, 50), rng2, gain=2.0)
        np.testing.assert_allclose(scaled, 2.0 * base)


class TestHeNormal:
    def test_std_matches_fan_in(self):
        rng = np.random.default_rng(0)
        w = he_normal((400, 100), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.1)

    def test_zero_mean(self):
        rng = np.random.default_rng(1)
        w = he_normal((500, 100), rng)
        assert abs(w.mean()) < 0.01
