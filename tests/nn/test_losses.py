"""Tests for the paper's loss functions (Eq. 7-9) and SLO weighting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import (
    combined_loss,
    huber_loss,
    mape_loss,
    mse_loss,
    slo_violation_weights,
)
from repro.nn.tensor import Tensor
from tests.nn.gradcheck import assert_grad_matches

RNG = np.random.default_rng(3)


class TestHuberLoss:
    def test_zero_at_perfect_prediction(self):
        y = Tensor(RNG.normal(size=(4,)))
        assert huber_loss(y, y).item() == 0.0

    def test_matches_eq7_by_hand(self):
        pred = Tensor(np.array([0.5, 3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        # |0.5| <= 1 -> 0.125 ; |3| > 1 -> 1*(3-0.5) = 2.5 ; mean = 1.3125
        assert huber_loss(pred, target, delta=1.0).item() == pytest.approx(1.3125)

    def test_gradcheck(self):
        target = RNG.normal(size=(5,))
        assert_grad_matches(
            lambda t: huber_loss(t, Tensor(target), delta=1.0), target + RNG.normal(size=5)
        )


class TestMapeLoss:
    def test_percent_units(self):
        pred = Tensor(np.array([1.1]))
        target = Tensor(np.array([1.0]))
        assert mape_loss(pred, target).item() == pytest.approx(10.0, rel=1e-6)

    def test_eps_guards_zero_targets(self):
        loss = mape_loss(Tensor(np.array([1.0])), Tensor(np.array([0.0])))
        assert np.isfinite(loss.item())

    def test_gradcheck(self):
        target = RNG.uniform(0.5, 2.0, size=(4,))
        assert_grad_matches(
            lambda t: mape_loss(t, Tensor(target)), target * 1.2, rtol=1e-3
        )


class TestCombinedLoss:
    def test_is_convex_combination(self):
        pred = Tensor(RNG.normal(size=(6,)) + 2.0)
        target = Tensor(np.full(6, 2.0))
        h = huber_loss(pred, target).item()
        m = mape_loss(pred, target).item()
        c = combined_loss(pred, target, alpha=0.05).item()
        assert c == pytest.approx(0.05 * m + 0.95 * h, rel=1e-9)

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            combined_loss(Tensor([1.0]), Tensor([1.0]), alpha=1.5)

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_nonnegative_for_any_alpha(self, alpha):
        pred = Tensor(np.array([1.0, 3.0]))
        target = Tensor(np.array([2.0, 2.0]))
        assert combined_loss(pred, target, alpha=alpha).item() >= 0.0

    def test_weights_upweight_samples(self):
        pred = Tensor(np.array([[2.0], [2.0]]))
        target = Tensor(np.array([[1.0], [1.0]]))
        base = combined_loss(pred, target).item()
        weighted = combined_loss(pred, target, weights=np.array([[2.0], [2.0]])).item()
        assert weighted == pytest.approx(2 * base, rel=1e-9)


class TestSloViolationWeights:
    def test_violators_get_penalty(self):
        w = slo_violation_weights(np.array([0.05, 0.15, 0.09]), slo=0.1, penalty=4.0)
        np.testing.assert_allclose(w, [[1.0], [4.0], [1.0]])

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            slo_violation_weights(np.array([0.1]), slo=0.1, penalty=0.5)

    def test_integration_with_loss_shifts_optimum(self):
        # Up-weighting violating samples increases their loss contribution.
        lat = np.array([0.2, 0.05])
        w = slo_violation_weights(lat, slo=0.1, penalty=10.0)
        pred = Tensor(np.array([[0.15], [0.15]]))
        target = Tensor(np.array([[0.2], [0.05]]))
        unweighted = combined_loss(pred, target).item()
        weighted = combined_loss(pred, target, weights=w).item()
        assert weighted > unweighted


class TestMSE:
    def test_matches_numpy(self):
        pred = Tensor(RNG.normal(size=(8,)))
        target = Tensor(RNG.normal(size=(8,)))
        assert mse_loss(pred, target).item() == pytest.approx(
            float(np.mean((pred.data - target.data) ** 2))
        )
