"""Tests for the Transformer encoder stack and positional encoding."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.nn.transformer import (
    PositionalEncoding,
    TransformerEncoder,
    TransformerEncoderLayer,
    sinusoidal_positional_encoding,
)

RNG = np.random.default_rng(11)


class TestPositionalEncoding:
    def test_table_shape_and_range(self):
        table = sinusoidal_positional_encoding(100, 16)
        assert table.shape == (100, 16)
        assert np.all(np.abs(table) <= 1.0)

    def test_odd_dim(self):
        table = sinusoidal_positional_encoding(10, 7)
        assert table.shape == (10, 7)

    def test_rows_distinct(self):
        table = sinusoidal_positional_encoding(64, 16)
        dists = np.linalg.norm(table[:, None] - table[None, :], axis=-1)
        np.fill_diagonal(dists, np.inf)
        assert dists.min() > 1e-3  # no two positions share an encoding

    def test_module_adds_table(self):
        pe = PositionalEncoding(8, max_len=32)
        pe.eval()
        x = np.zeros((2, 5, 8))
        out = pe(Tensor(x)).data
        np.testing.assert_allclose(out, np.broadcast_to(pe.table[:5], (2, 5, 8)))

    def test_too_long_sequence_rejected(self):
        pe = PositionalEncoding(8, max_len=4)
        with pytest.raises(ValueError):
            pe(Tensor(np.zeros((1, 5, 8))))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sinusoidal_positional_encoding(0, 8)


class TestEncoderLayer:
    def test_shape_preserved(self):
        layer = TransformerEncoderLayer(16, 4, 32, seed=0)
        x = Tensor(RNG.normal(size=(2, 6, 16)))
        assert layer(x).shape == (2, 6, 16)

    def test_output_is_layernormed(self):
        layer = TransformerEncoderLayer(16, 4, 32, seed=0)
        layer.eval()
        out = layer(Tensor(RNG.normal(size=(2, 6, 16)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros((2, 6)), atol=1e-8)

    def test_gradients_flow_to_all_parameters(self):
        layer = TransformerEncoderLayer(8, 2, 16, seed=0)
        x = Tensor(RNG.normal(size=(2, 4, 8)), requires_grad=True)
        layer(x).sum().backward()
        for name, p in layer.named_parameters():
            assert p.grad is not None, name


class TestEncoderStack:
    def test_layer_count(self):
        enc = TransformerEncoder(16, 4, 32, num_layers=3, seed=0)
        assert len(enc.layers) == 3

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            TransformerEncoder(16, 4, 32, num_layers=0)

    def test_deterministic_given_seed(self):
        x = RNG.normal(size=(2, 5, 16))
        a = TransformerEncoder(16, 4, 32, 2, seed=123)
        b = TransformerEncoder(16, 4, 32, 2, seed=123)
        a.eval(), b.eval()
        np.testing.assert_allclose(a(Tensor(x)).data, b(Tensor(x)).data)

    def test_attention_maps_collected(self):
        enc = TransformerEncoder(8, 2, 16, 2, seed=0)
        enc.eval()
        enc(Tensor(RNG.normal(size=(1, 4, 8))))
        maps = enc.attention_maps()
        assert len(maps) == 2
        assert all(m.shape == (1, 2, 4, 4) for m in maps)

    def test_eval_deterministic_train_stochastic_with_dropout(self):
        enc = TransformerEncoder(8, 2, 16, 1, dropout=0.3, seed=0)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        enc.eval()
        out1 = enc(x).data.copy()
        out2 = enc(x).data.copy()
        np.testing.assert_allclose(out1, out2)
        enc.train()
        out3 = enc(x).data
        assert not np.allclose(out1, out3)

    def test_training_reduces_loss(self):
        """End-to-end sanity: a tiny encoder + head can fit a toy target."""
        from repro.nn.layers import Linear
        from repro.nn.optim import Adam

        enc = TransformerEncoder(8, 2, 16, 1, seed=0)
        head = Linear(8, 1, seed=1)
        x = Tensor(RNG.normal(size=(8, 6, 8)))
        target = Tensor(RNG.normal(size=(8, 1)))
        params = enc.parameters() + head.parameters()
        opt = Adam(params, lr=1e-2)

        def loss_value() -> float:
            pooled = enc(x).mean(axis=1)
            diff = head(pooled) - target
            return (diff * diff).mean()

        first = None
        for step in range(60):
            loss = loss_value()
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.5 * first
