"""Finite-difference gradient checking used across the nn test modules."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.tensor import Tensor


def numeric_grad(
    fn: Callable[[np.ndarray], float],
    x: np.ndarray,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` at ``x``."""
    x = np.asarray(x, dtype=float)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def assert_grad_matches(
    build: Callable[[Tensor], Tensor],
    x: np.ndarray,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    eps: float = 1e-6,
) -> None:
    """Check autograd of ``scalar = build(Tensor(x)).sum()`` against finite
    differences with respect to ``x``."""
    x = np.asarray(x, dtype=float)

    t = Tensor(x.copy(), requires_grad=True)
    out = build(t)
    loss = out.sum() if out.size > 1 else out
    loss.backward()
    analytic = t.grad

    def scalar_fn(arr: np.ndarray) -> float:
        res = build(Tensor(arr.copy()))
        return float(res.data.sum())

    numeric = numeric_grad(scalar_fn, x, eps=eps)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)
