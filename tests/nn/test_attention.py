"""Tests for scaled dot-product and multi-head attention."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.tensor import Tensor
from tests.nn.gradcheck import assert_grad_matches

RNG = np.random.default_rng(5)


class TestScaledDotProduct:
    def test_weights_are_distribution(self):
        q = Tensor(RNG.normal(size=(2, 4, 8)))
        out, w = scaled_dot_product_attention(q, q, q)
        assert out.shape == (2, 4, 8)
        np.testing.assert_allclose(w.data.sum(axis=-1), np.ones((2, 4)), atol=1e-12)

    def test_uniform_keys_give_mean_of_values(self):
        # If all scores are equal, attention averages the values.
        q = Tensor(np.zeros((1, 3, 4)))
        k = Tensor(np.zeros((1, 3, 4)))
        v = Tensor(RNG.normal(size=(1, 3, 4)))
        out, _ = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out.data, np.broadcast_to(v.data.mean(axis=1, keepdims=True), (1, 3, 4)))

    def test_mask_blocks_positions(self):
        q = Tensor(RNG.normal(size=(1, 2, 4)))
        v = Tensor(RNG.normal(size=(1, 2, 4)))
        mask = np.array([[False, True], [False, True]])
        _, w = scaled_dot_product_attention(q, q, v, mask=mask)
        np.testing.assert_allclose(w.data[..., 1], 0.0, atol=1e-9)

    def test_gradients_flow(self):
        x = RNG.normal(size=(1, 3, 4))
        assert_grad_matches(
            lambda t: scaled_dot_product_attention(t, t, t)[0], x, rtol=1e-3, atol=1e-5
        )


class TestMultiHeadAttention:
    def test_shape_preserved(self):
        mha = MultiHeadAttention(16, 4, seed=0)
        x = Tensor(RNG.normal(size=(2, 5, 16)))
        assert mha(x, x, x).shape == (2, 5, 16)

    def test_pooled_2d_input(self):
        mha = MultiHeadAttention(16, 4, seed=0)
        x = Tensor(RNG.normal(size=(3, 16)))
        out = mha(x, x, x)
        assert out.shape == (3, 16)

    def test_embed_dim_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_last_weights_recorded(self):
        mha = MultiHeadAttention(8, 2, seed=0)
        x = Tensor(RNG.normal(size=(2, 4, 8)))
        mha(x, x, x)
        assert mha.last_weights.shape == (2, 2, 4, 4)
        np.testing.assert_allclose(mha.last_weights.sum(axis=-1), np.ones((2, 2, 4)), atol=1e-9)

    def test_key_padding_mask(self):
        mha = MultiHeadAttention(8, 2, seed=0)
        x = Tensor(RNG.normal(size=(2, 4, 8)))
        pad = np.zeros((2, 4), dtype=bool)
        pad[:, -1] = True  # last position masked out
        mha(x, x, x, mask=pad)
        np.testing.assert_allclose(mha.last_weights[..., -1], 0.0, atol=1e-9)

    def test_backward_reaches_all_projections(self):
        mha = MultiHeadAttention(8, 2, seed=0)
        x = Tensor(RNG.normal(size=(2, 3, 8)), requires_grad=True)
        mha(x, x, x).sum().backward()
        for name, p in mha.named_parameters():
            assert p.grad is not None, name
        assert x.grad is not None

    def test_permutation_equivariance_without_positions(self):
        # Self-attention with no positional information is permutation
        # equivariant: permuting the input sequence permutes the output.
        mha = MultiHeadAttention(8, 2, seed=0)
        mha.eval()
        x = RNG.normal(size=(1, 5, 8))
        perm = np.array([3, 1, 4, 0, 2])
        out1 = mha(Tensor(x), Tensor(x), Tensor(x)).data
        xp = x[:, perm]
        out2 = mha(Tensor(xp), Tensor(xp), Tensor(xp)).data
        np.testing.assert_allclose(out1[:, perm], out2, atol=1e-10)
