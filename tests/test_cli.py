"""Tests for the command-line interface (in-process, via cli.main)."""

import numpy as np
import pytest

from repro.arrival.io import load_trace
from repro.cli import main
from repro.core.training import load_trained
from repro.telemetry import get_registry, read_jsonl


@pytest.fixture()
def trace_path(tmp_path):
    path = tmp_path / "trace.npz"
    rc = main([
        "traces", "generate", "--kind", "azure", "--seed", "0",
        "--segments", "3", "--segment-duration", "15", "--out", str(path),
    ])
    assert rc == 0
    return path


@pytest.fixture()
def model_path(tmp_path, trace_path):
    path = tmp_path / "model.npz"
    rc = main([
        "train", "--trace", str(trace_path), "--train-segments", "2",
        "--samples", "60", "--seq-len", "16", "--epochs", "2",
        "--batch-size", "16", "--out", str(path),
    ])
    assert rc == 0
    return path


class TestTracesCommand:
    def test_generate_npz(self, trace_path):
        trace = load_trace(trace_path)
        assert trace.n_segments == 3
        assert trace.timestamps.size > 100

    def test_generate_csv(self, tmp_path):
        path = tmp_path / "t.csv"
        rc = main(["traces", "generate", "--kind", "twitter",
                   "--segments", "2", "--segment-duration", "10",
                   "--out", str(path)])
        assert rc == 0
        assert path.read_text().startswith("# twitter")

    def test_generate_requires_out(self):
        assert main(["traces", "generate"]) == 2

    def test_stats(self, trace_path, capsys):
        rc = main(["traces", "stats", "--path", str(trace_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "IDC" in out and "rate req/s" in out

    def test_stats_requires_path(self):
        assert main(["traces", "stats"]) == 2


class TestTrainCommand:
    def test_checkpoint_loadable(self, model_path):
        trained = load_trained(model_path)
        preds = trained.predict(np.full(16, 0.01), np.array([[1024.0, 4, 0.05]]))
        assert preds.shape == (1, 6)

    def test_bad_train_segments(self, trace_path, tmp_path):
        rc = main(["train", "--trace", str(trace_path), "--train-segments", "99",
                   "--samples", "10", "--seq-len", "8", "--epochs", "1",
                   "--out", str(tmp_path / "m.npz")])
        assert rc == 2


class TestOptimizeCommand:
    def test_prints_decision(self, trace_path, model_path, capsys):
        rc = main(["optimize", "--model", str(model_path),
                   "--trace", str(trace_path), "--segment", "2", "--slo", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted p95 latency" in out
        assert "MB" in out


class TestEvaluateCommand:
    def test_deepbat_only(self, trace_path, model_path, capsys):
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:3",
                   "--controllers", "deepbat", "--update-every", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean VCR %" in out

    def test_unknown_controller(self, trace_path, model_path):
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:2",
                   "--controllers", "nope"])
        assert rc == 2

    def test_telemetry_dump(self, trace_path, model_path, tmp_path, capsys):
        dump = tmp_path / "telemetry.jsonl"
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:3",
                   "--controllers", "deepbat", "--update-every", "2000",
                   "--telemetry", str(dump)])
        assert rc == 0
        assert "telemetry records" in capsys.readouterr().out
        records = read_jsonl(dump)
        types = {r["type"] for r in records}
        assert {"span", "histogram", "event"} <= types
        kinds = {r.get("kind") for r in records if r["type"] == "event"}
        assert {"decision", "segment"} <= kinds
        # Telemetry is scoped to the command: the process default stays off.
        assert not get_registry().enabled

    def test_no_telemetry_collects_nothing(self, trace_path, model_path, capsys):
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:2",
                   "--controllers", "deepbat", "--update-every", "2000"])
        assert rc == 0
        assert "telemetry records" not in capsys.readouterr().out


@pytest.mark.faults
class TestEvaluateFaultFlags:
    def test_fault_rate_adds_resilience_columns(self, trace_path, model_path,
                                                capsys):
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:3",
                   "--controllers", "deepbat", "--update-every", "2000",
                   "--fault-rate", "0.2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "retries" in out and "failed" in out and "degraded" in out

    def test_no_faults_no_resilience_columns(self, trace_path, model_path,
                                             capsys):
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:2",
                   "--controllers", "deepbat", "--update-every", "2000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "retries" not in out and "degraded" not in out

    def test_fault_run_deterministic(self, trace_path, model_path, capsys):
        # Compare only simulation-derived columns: "decision ms" is
        # wall-clock and legitimately varies between runs.
        def run():
            rc = main(["evaluate", "--model", str(model_path),
                       "--trace", str(trace_path), "--segments", "1:3",
                       "--controllers", "deepbat", "--update-every", "2000",
                       "--fault-rate", "0.25", "--seed", "7"])
            assert rc == 0
            out = capsys.readouterr().out
            row = next(line for line in out.splitlines()
                       if line.strip().startswith("deepbat"))
            cells = [c.strip() for c in row.split("|")]
            del cells[4]  # decision ms
            return cells

        assert run() == run()

    def test_fault_telemetry_has_resilience_section(self, trace_path,
                                                    model_path, tmp_path,
                                                    capsys):
        dump = tmp_path / "faulty.jsonl"
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:3",
                   "--controllers", "deepbat", "--update-every", "2000",
                   "--fault-rate", "0.2", "--telemetry", str(dump)])
        assert rc == 0
        capsys.readouterr()
        records = read_jsonl(dump)
        names = {r["name"] for r in records if r["type"] == "counter"}
        assert "fault.retries" in names
        rc = main(["report", str(dump)])
        assert rc == 0
        assert "resilience" in capsys.readouterr().out

    def test_invalid_fault_rate(self, trace_path, model_path):
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:2",
                   "--fault-rate", "1.5"])
        assert rc == 2

    def test_invalid_retries(self, trace_path, model_path):
        rc = main(["evaluate", "--model", str(model_path),
                   "--trace", str(trace_path), "--segments", "1:2",
                   "--fault-rate", "0.1", "--retries", "0"])
        assert rc == 2


@pytest.mark.serving
class TestServeCommand:
    def test_static_chooser_end_to_end(self, trace_path, capsys):
        rc = main(["serve", "--trace", str(trace_path),
                   "--chooser", "static", "--start-segment", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served" in out and "p95 latency ms" in out
        assert "cold-start rate" in out and "reconfigurations" in out

    def test_batch_chooser_with_drift_and_faults(self, trace_path, capsys):
        rc = main(["serve", "--trace", str(trace_path),
                   "--chooser", "batch", "--start-segment", "1",
                   "--keep-alive", "5", "--cold-starts", "--drift",
                   "--deploy-delay", "1", "--fault-rate", "0.1",
                   "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "drift triggers" in out
        assert "invocation retries" in out and "failed requests" in out

    def test_deepbat_chooser_runs(self, trace_path, model_path, capsys):
        rc = main(["serve", "--trace", str(trace_path),
                   "--chooser", "deepbat", "--model", str(model_path),
                   "--start-segment", "1"])
        assert rc == 0
        assert "decisions" in capsys.readouterr().out

    def test_deepbat_requires_model(self, trace_path):
        assert main(["serve", "--trace", str(trace_path),
                     "--chooser", "deepbat"]) == 2

    def test_start_segment_out_of_range(self, trace_path):
        assert main(["serve", "--trace", str(trace_path),
                     "--start-segment", "99"]) == 2

    def test_invalid_fault_rate(self, trace_path):
        assert main(["serve", "--trace", str(trace_path),
                     "--fault-rate", "1.5"]) == 2

    def test_telemetry_dump_and_serving_dashboard(self, trace_path, tmp_path,
                                                  capsys):
        dump = tmp_path / "serving.jsonl"
        rc = main(["serve", "--trace", str(trace_path),
                   "--chooser", "batch", "--start-segment", "1",
                   "--keep-alive", "5", "--cold-starts",
                   "--telemetry", str(dump)])
        assert rc == 0
        assert "telemetry records" in capsys.readouterr().out
        records = read_jsonl(dump)
        names = {r["name"] for r in records if r["type"] == "counter"}
        assert "serving.requests" in names and "serving.batches" in names
        rc = main(["report", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving" in out and "cold-start rate" in out
        # Telemetry is scoped to the command: the process default stays off.
        assert not get_registry().enabled


class TestServeValidation:
    """PR 5 satellite: malformed serve inputs fail fast with exit code 2."""

    @pytest.mark.parametrize("flags", [
        ["--deploy-delay", "-1"],
        ["--keep-alive", "0"],
        ["--keep-alive", "-5"],
        ["--queue-limit", "-1"],
        ["--max-containers", "0"],
        ["--slo", "0"],
        ["--decision-interval", "0"],
        ["--retrain-delay", "-1"],
        ["--checkpoint-every", "0"],
        ["--guardrail", "--guardrail-window", "0"],
        ["--guardrail", "--guardrail-k", "0"],
        ["--guardrail", "--guardrail-cooldown", "0"],
        ["--guardrail", "--guardrail-percentile", "101"],
        ["--restore"],  # --restore without --checkpoint
    ])
    def test_rejects_bad_inputs(self, trace_path, flags, capsys):
        rc = main(["serve", "--trace", str(trace_path)] + flags)
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "--" in err  # the message names the offending flag

    def test_error_messages_are_actionable(self, trace_path, capsys):
        main(["serve", "--trace", str(trace_path), "--deploy-delay", "-1"])
        err = capsys.readouterr().err
        assert "--deploy-delay" in err and "got -1" in err
        main(["serve", "--trace", str(trace_path), "--queue-limit", "-3"])
        err = capsys.readouterr().err
        assert "--queue-limit" in err and "sheds immediately" in err


class TestServeReliability:
    def test_checkpointed_run_writes_snapshot_and_journal(self, trace_path,
                                                          tmp_path, capsys):
        ck = tmp_path / "serve.ckpt"
        rc = main(["serve", "--trace", str(trace_path),
                   "--start-segment", "1",
                   "--checkpoint", str(ck), "--checkpoint-every", "128"])
        assert rc == 0
        assert "checkpoints written" in capsys.readouterr().out
        assert ck.exists()
        assert (tmp_path / "serve.ckpt.journal").exists()

    def test_restore_resumes_from_checkpoint(self, trace_path, tmp_path,
                                             capsys):
        import repro.serving.engine as engine_mod

        ck = tmp_path / "resume.ckpt"
        args = ["serve", "--trace", str(trace_path), "--start-segment", "1",
                "--checkpoint", str(ck), "--checkpoint-every", "64"]
        rc = main(args)
        assert rc == 0
        baseline = capsys.readouterr().out

        # Kill a fresh run partway (monkeypatch-free: drive the engine's own
        # chaos hook through a wrapped run), then resume it via --restore.
        original_run = engine_mod.ServingEngine.run

        def crashing_run(self, *a, **kw):
            kw["crash_after_events"] = 200
            return original_run(self, *a, **kw)

        engine_mod.ServingEngine.run = crashing_run
        try:
            with pytest.raises(engine_mod.SimulatedCrash):
                main(args)
        finally:
            engine_mod.ServingEngine.run = original_run
        capsys.readouterr()
        rc = main(args + ["--restore"])
        assert rc == 0
        resumed = capsys.readouterr().out
        # The summary table of the resumed run matches the uninterrupted one
        # (modulo the checkpoint counter, which counts per-process snapshots).
        strip = lambda text: [line for line in text.splitlines()
                              if "checkpoints written" not in line]
        assert strip(resumed) == strip(baseline)

    def test_restore_with_missing_checkpoint_fails_cleanly(self, trace_path,
                                                           tmp_path, capsys):
        rc = main(["serve", "--trace", str(trace_path), "--start-segment", "1",
                   "--checkpoint", str(tmp_path / "absent.ckpt"), "--restore"])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_guardrail_flags_run_and_report(self, trace_path, tmp_path,
                                            capsys):
        dump = tmp_path / "guard.jsonl"
        # An undersized static config with a huge batching delay breaks the
        # SLO immediately; the breaker must trip and the dashboard must grow
        # a reliability section.
        rc = main(["serve", "--trace", str(trace_path), "--start-segment", "1",
                   "--batch-size", "64", "--timeout", "0.5",
                   "--guardrail", "--guardrail-window", "32",
                   "--guardrail-k", "2", "--guardrail-cooldown", "2",
                   "--telemetry", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "guardrail trips" in out and "breaker state" in out
        records = read_jsonl(dump)
        names = {r["name"] for r in records if r["type"] == "counter"}
        assert "guardrail.tripped" in names
        rc = main(["report", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reliability" in out and "breaker trips" in out


@pytest.mark.serving
@pytest.mark.fleet
class TestServeFleet:
    """PR 6: ``repro serve --fleet fleet.json`` multi-endpoint serving."""

    @pytest.fixture()
    def fleet_path(self, tmp_path):
        import json

        path = tmp_path / "fleet.json"
        path.write_text(json.dumps({
            "max_containers": 6,
            "scheduler": {"interval_s": 20.0},
            "endpoints": [
                {"name": "chat", "memory_mb": 2048, "batch_size": 8,
                 "timeout": 0.05, "slo": 0.15, "share": 0.7},
                {"name": "embed", "memory_mb": 1024, "batch_size": 16,
                 "timeout": 0.02, "slo": 0.08, "share": 0.3,
                 "chooser": "batch", "decision_interval_s": 30.0},
            ],
        }))
        return path

    def test_two_endpoint_fleet_end_to_end(self, trace_path, fleet_path,
                                           capsys):
        rc = main(["serve", "--trace", str(trace_path),
                   "--fleet", str(fleet_path), "--start-segment", "1",
                   "--cold-starts", "--keep-alive", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet of 2 endpoints" in out and "budget 6 containers" in out
        assert "chat" in out and "embed" in out
        # Per-endpoint SLO verdict column plus the fleet totals row.
        assert "met" in out and "fleet" in out

    def test_invalid_config_names_field(self, fleet_path, trace_path, capsys):
        import json

        doc = json.loads(fleet_path.read_text())
        doc["endpoints"][0]["slo"] = 0
        fleet_path.write_text(json.dumps(doc))
        rc = main(["serve", "--trace", str(trace_path),
                   "--fleet", str(fleet_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: invalid fleet config")
        assert "endpoints[0].slo" in err

    def test_missing_shares_rejected(self, fleet_path, trace_path, capsys):
        import json

        doc = json.loads(fleet_path.read_text())
        for ep in doc["endpoints"]:
            del ep["share"]
        fleet_path.write_text(json.dumps(doc))
        rc = main(["serve", "--trace", str(trace_path),
                   "--fleet", str(fleet_path)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "share" in err and "chat" in err

    def test_deepbat_endpoint_requires_model(self, fleet_path, trace_path,
                                             capsys):
        import json

        doc = json.loads(fleet_path.read_text())
        doc["endpoints"][1]["chooser"] = "deepbat"
        fleet_path.write_text(json.dumps(doc))
        rc = main(["serve", "--trace", str(trace_path),
                   "--fleet", str(fleet_path)])
        assert rc == 2
        assert "--model" in capsys.readouterr().err

    @pytest.mark.parametrize("flags", [
        ["--guardrail"],
        ["--drift"],
        ["--checkpoint", "x.ckpt"],
    ])
    def test_single_engine_reliability_flags_rejected(self, fleet_path,
                                                      trace_path, flags,
                                                      capsys):
        rc = main(["serve", "--trace", str(trace_path),
                   "--fleet", str(fleet_path)] + flags)
        assert rc == 2
        err = capsys.readouterr().err
        assert "--fleet" in err and flags[0] in err

    def test_telemetry_and_fleet_dashboard(self, trace_path, fleet_path,
                                           tmp_path, capsys):
        dump = tmp_path / "fleet.jsonl"
        rc = main(["serve", "--trace", str(trace_path),
                   "--fleet", str(fleet_path), "--start-segment", "1",
                   "--telemetry", str(dump)])
        assert rc == 0
        assert "telemetry records" in capsys.readouterr().out
        records = read_jsonl(dump)
        names = {r["name"] for r in records if r["type"] == "counter"}
        # Per-endpoint namespacing, nothing under the bare prefix.
        assert "serving.chat.requests" in names
        assert "serving.embed.requests" in names
        assert "serving.requests" not in names
        assert "fleet.scheduler_plans" in names
        rc = main(["report", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "chat" in out and "embed" in out


class TestReportCommand:
    def test_renders_dashboard(self, trace_path, model_path, tmp_path, capsys):
        dump = tmp_path / "telemetry.jsonl"
        assert main(["evaluate", "--model", str(model_path),
                     "--trace", str(trace_path), "--segments", "1:3",
                     "--controllers", "deepbat", "--update-every", "2000",
                     "--telemetry", str(dump)]) == 0
        capsys.readouterr()
        rc = main(["report", str(dump)])
        assert rc == 0
        out = capsys.readouterr().out
        for section in ("segments", "decisions", "spans", "histograms"):
            assert section in out
        assert "p95 ms" in out and "cost $/1M" in out and "decision ms" in out

    def test_missing_file(self, tmp_path):
        assert main(["report", str(tmp_path / "absent.jsonl")]) == 2


@pytest.mark.gen
class TestServeGeneration:
    @pytest.fixture()
    def gen_path(self, tmp_path):
        import json

        path = tmp_path / "gen.json"
        path.write_text(json.dumps({
            "dispatcher": "continuous",
            "ttft_slo": 0.05,
            "length_model": {"prompt_mean": 64, "output_mean": 8},
        }))
        return path

    def test_generation_run_reports_token_metrics(self, trace_path, gen_path,
                                                  capsys):
        rc = main(["serve", "--trace", str(trace_path),
                   "--generation", str(gen_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dispatcher" in out and "continuous" in out
        assert "goodput req/s" in out
        assert "TTFT attainment" in out
        assert "p95 TTFT ms" in out and "p95 TPOT ms" in out
        assert "tokens generated" in out

    def test_generation_telemetry_dashboard_section(self, trace_path,
                                                    gen_path, tmp_path,
                                                    capsys):
        dump = tmp_path / "telemetry.jsonl"
        assert main(["serve", "--trace", str(trace_path),
                     "--generation", str(gen_path),
                     "--telemetry", str(dump)]) == 0
        names = {r["name"] for r in read_jsonl(dump) if r["type"] == "counter"}
        assert "serving.gen.requests" in names
        assert "serving.gen.tokens" in names
        capsys.readouterr()
        assert main(["report", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "generation" in out and "tokens" in out

    def test_invalid_generation_config_exits_2(self, trace_path, tmp_path,
                                               capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"ttft_slo": -1}')
        rc = main(["serve", "--trace", str(trace_path),
                   "--generation", str(bad)])
        assert rc == 2
        err = capsys.readouterr().err
        assert "invalid generation config" in err
        assert "generation.ttft_slo" in err

    def test_generation_rejects_fleet_and_faults(self, trace_path, gen_path,
                                                 tmp_path, capsys):
        fleet = tmp_path / "fleet.json"
        fleet.write_text('{"endpoints": []}')
        assert main(["serve", "--trace", str(trace_path),
                     "--fleet", str(fleet),
                     "--generation", str(gen_path)]) == 2
        assert main(["serve", "--trace", str(trace_path),
                     "--generation", str(gen_path),
                     "--fault-rate", "0.1"]) == 2
        err = capsys.readouterr().err
        assert "fault injection" in err
