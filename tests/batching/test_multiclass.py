"""Tests for the multi-class (MBS-style) batching extension."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.batching.multiclass import (
    MultiClassConfig,
    RequestClass,
    optimize_multiclass,
    simulate_multiclass,
)
from repro.serverless.platform import ServerlessPlatform

PLAT = ServerlessPlatform()


def make_classes():
    return [
        RequestClass("interactive", poisson_map(150.0).sample(duration=30.0, seed=0),
                     slo=0.05),
        RequestClass("batchy", poisson_map(300.0).sample(duration=30.0, seed=1),
                     slo=0.3),
    ]


class TestRequestClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequestClass("x", np.array([2.0, 1.0]), slo=0.1)
        with pytest.raises(ValueError):
            RequestClass("x", np.array([1.0]), slo=0.0)

    def test_nan_timestamps_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            RequestClass("x", np.array([1.0, np.nan]), slo=0.1)
        with pytest.raises(ValueError, match="non-finite"):
            RequestClass("x", np.array([1.0, np.inf]), slo=0.1)

    def test_negative_timestamps_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            RequestClass("x", np.array([-1.0, 1.0]), slo=0.1)


class TestMultiClassConfigAndSim:
    def test_simulate_covers_every_class(self):
        classes = make_classes()
        cfg = MultiClassConfig(1024.0, {"interactive": (2, 0.01), "batchy": (16, 0.1)})
        result = simulate_multiclass(classes, cfg, PLAT)
        assert set(result.per_class) == {"interactive", "batchy"}
        assert result.n_requests == sum(c.timestamps.size for c in classes)
        assert result.total_cost > 0

    def test_missing_class_rejected(self):
        classes = make_classes()
        cfg = MultiClassConfig(1024.0, {"interactive": (2, 0.01)})
        with pytest.raises(ValueError):
            simulate_multiclass(classes, cfg, PLAT)

    def test_str_format(self):
        cfg = MultiClassConfig(512.0, {"a": (4, 0.05)})
        assert "B=4" in str(cfg)

    def test_str_shows_sub_millisecond_timeouts(self):
        # Regression: ":.0f" rendered any T < 0.5 ms as "T=0ms".
        cfg = MultiClassConfig(512.0, {"a": (4, 0.0004)})
        assert "T=0.4ms" in str(cfg)
        zero = MultiClassConfig(512.0, {"a": (1, 0.0)})
        assert "T=0ms" in str(zero)


class TestOptimizeMulticlass:
    def test_meets_both_slos(self):
        classes = make_classes()
        cfg, result = optimize_multiclass(classes, PLAT)
        assert result.meets_all_slos(classes)

    def test_tight_class_gets_smaller_batching(self):
        """The 50 ms class must batch less aggressively than the 300 ms one."""
        classes = make_classes()
        cfg, _ = optimize_multiclass(classes, PLAT)
        b_tight, t_tight = cfg.per_class["interactive"]
        b_loose, t_loose = cfg.per_class["batchy"]
        assert (b_tight, t_tight) <= (b_loose, max(t_loose, t_tight))
        assert b_loose >= b_tight

    def test_cheaper_than_naive_single_class_settings(self):
        """Sharing the memory tier while batching per class beats serving
        everything with the tight class's conservative parameters."""
        classes = make_classes()
        cfg, result = optimize_multiclass(classes, PLAT)
        naive = MultiClassConfig(
            cfg.memory_mb,
            {c.name: cfg.per_class["interactive"] for c in classes},
        )
        naive_result = simulate_multiclass(classes, naive, PLAT)
        assert result.total_cost <= naive_result.total_cost + 1e-12

    def test_duplicate_names_rejected(self):
        c = make_classes()[0]
        with pytest.raises(ValueError):
            optimize_multiclass([c, c], PLAT)

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            optimize_multiclass([], PLAT)

    def test_empty_stream_class_is_tolerated(self):
        classes = [
            RequestClass("busy", poisson_map(100.0).sample(duration=10.0, seed=2),
                         slo=0.2),
            RequestClass("idle", np.empty(0), slo=0.1),
        ]
        cfg, result = optimize_multiclass(classes, PLAT)
        assert "idle" in cfg.per_class
        assert result.per_class["idle"].n_requests == 0

    def test_matches_brute_force_on_small_grid(self):
        """The decomposed search must equal full enumeration: per memory
        tier the classes are independent, so per-class cheapest-feasible
        composes into the global optimum (feasibility-first, then total
        cost — the optimizer's own tie-break order)."""
        from itertools import product

        classes = make_classes()
        memories = (1024.0, 3008.0)
        batch_sizes = (1, 4, 16)
        timeouts = (0.0, 0.02, 0.1)
        cfg, result = optimize_multiclass(
            classes, PLAT, memories=memories,
            batch_sizes=batch_sizes, timeouts=timeouts,
        )

        options = [
            (b, t) for b, t in product(batch_sizes, timeouts)
            if not (b == 1 and t > 0)  # the optimizer's degenerate skip
        ]
        best_key = None
        for mem in memories:
            for combo in product(options, repeat=len(classes)):
                mc = MultiClassConfig(
                    mem, {c.name: bt for c, bt in zip(classes, combo)}
                )
                res = simulate_multiclass(classes, mc, PLAT)
                key = (not res.meets_all_slos(classes), res.total_cost)
                if best_key is None or key < best_key:
                    best_key = key
        assert best_key is not None
        assert result.meets_all_slos(classes) == (not best_key[0])
        assert result.total_cost == pytest.approx(best_key[1])

    def test_per_class_platform_override(self):
        """``platforms`` routes each class through its own platform —
        a 10x-priced class must cost 10x what the shared platform bills."""
        from repro.serverless.pricing import LambdaPricing

        classes = make_classes()
        pricey = ServerlessPlatform(pricing=LambdaPricing(
            gb_second_price=10 * PLAT.pricing.gb_second_price,
            request_price=10 * PLAT.pricing.request_price,
        ))
        cfg = MultiClassConfig(
            1024.0, {"interactive": (2, 0.01), "batchy": (16, 0.1)}
        )
        shared = simulate_multiclass(classes, cfg, PLAT)
        mixed = simulate_multiclass(classes, cfg, PLAT,
                                    platforms={"batchy": pricey})
        assert mixed.per_class["interactive"].total_cost == pytest.approx(
            shared.per_class["interactive"].total_cost
        )
        assert mixed.per_class["batchy"].total_cost == pytest.approx(
            10 * shared.per_class["batchy"].total_cost
        )
        # The optimizer accepts the same mapping.
        _cfg, res = optimize_multiclass(
            classes, PLAT, memories=(1024.0,), batch_sizes=(1, 8),
            timeouts=(0.0, 0.05), platforms={"batchy": pricey},
        )
        assert res.per_class["batchy"].total_cost > 0

    def test_infeasible_slo_falls_back(self):
        classes = [
            RequestClass("impossible", poisson_map(100.0).sample(duration=10.0, seed=3),
                         slo=1e-6),
        ]
        cfg, result = optimize_multiclass(classes, PLAT)
        assert not result.meets_all_slos(classes)  # honest fallback
        assert cfg.per_class["impossible"][0] >= 1
