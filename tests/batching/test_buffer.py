"""Tests for the online batching buffer, including cross-checks against
the vectorized simulator (they implement the same (B, T) policy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching.buffer import BatchingBuffer
from repro.batching.config import BatchConfig
from repro.batching.simulator import form_batches


def drive(ts, config):
    """Feed a full trace through the online buffer; return (ends, dispatches)."""
    buf = BatchingBuffer(config)
    batches = []
    for t in ts:
        batches.extend(buf.observe(t))
    batches.extend(buf.flush())
    ends = np.cumsum([b.size for b in batches])
    disp = np.array([b.dispatch_time for b in batches])
    return ends, disp


class TestOnlineBuffer:
    def test_size_triggered_dispatch(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 2, 10.0))
        assert buf.observe(0.0) == []
        out = buf.observe(0.5)
        assert len(out) == 1
        assert out[0].size == 2
        assert out[0].dispatch_time == 0.5

    def test_timeout_triggered_dispatch(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 10, 0.1))
        buf.observe(0.0)
        out = buf.poll(0.2)
        assert len(out) == 1
        assert out[0].dispatch_time == pytest.approx(0.1)

    def test_waits_never_exceed_timeout(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 4, 0.05))
        rng = np.random.default_rng(0)
        ts = np.sort(rng.uniform(0, 5, 200))
        batches = []
        for t in ts:
            batches.extend(buf.observe(t))
        batches.extend(buf.flush())
        for b in batches:
            assert np.all(b.waits() <= 0.05 + 1e-12)
            assert np.all(b.waits() >= -1e-12)

    def test_rejects_time_travel(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 2, 1.0))
        buf.observe(1.0)
        with pytest.raises(ValueError):
            buf.observe(0.5)

    def test_reconfigure_applies_to_future_batches(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 4, 10.0))
        buf.observe(0.0)
        buf.reconfigure(BatchConfig(1024.0, 2, 10.0))
        out = buf.observe(0.1)
        assert len(out) == 1 and out[0].size == 2

    def test_flush_empties_buffer(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 100, 50.0))
        for t in [0.0, 0.1, 0.2]:
            buf.observe(t)
        assert buf.pending == 3
        out = buf.flush()
        assert buf.pending == 0
        assert sum(b.size for b in out) == 3

    def test_indices_are_sequential(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 2, 1.0))
        all_batches = []
        for t in [0.0, 0.1, 0.2, 0.3]:
            all_batches.extend(buf.observe(t))
        idx = np.concatenate([b.indices for b in all_batches])
        np.testing.assert_allclose(idx, [0, 1, 2, 3])


class TestBufferMatchesSimulator:
    """The online buffer and the vectorized batch former must agree."""

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100, unique=True),
        st.integers(1, 8),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_partition_and_dispatches(self, raw, b, t):
        ts = np.sort(np.asarray(raw))
        cfg = BatchConfig(1024.0, b, t)
        sim_ends, sim_disp = form_batches(ts, b, t)
        buf_ends, buf_disp = drive(ts, cfg)
        np.testing.assert_array_equal(buf_ends, sim_ends)
        np.testing.assert_allclose(buf_disp, sim_disp, atol=1e-12)

    def test_bursty_trace_agreement(self):
        rng = np.random.default_rng(42)
        # clustered arrivals stress the timeout-vs-size tie logic
        ts = np.sort(np.concatenate([rng.uniform(0, 0.01, 30), rng.uniform(5, 5.01, 30)]))
        sim_ends, sim_disp = form_batches(ts, 8, 0.05)
        buf_ends, buf_disp = drive(ts, BatchConfig(1024.0, 8, 0.05))
        np.testing.assert_array_equal(buf_ends, sim_ends)
        np.testing.assert_allclose(buf_disp, sim_disp, atol=1e-12)
