"""Tests for the online batching buffer, including cross-checks against
the vectorized simulator (they implement the same (B, T) policy)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching.buffer import BatchingBuffer
from repro.batching.config import BatchConfig
from repro.batching.simulator import form_batches


def drive(ts, config):
    """Feed a full trace through the online buffer; return (ends, dispatches)."""
    buf = BatchingBuffer(config)
    batches = []
    for t in ts:
        batches.extend(buf.observe(t))
    batches.extend(buf.flush())
    ends = np.cumsum([b.size for b in batches])
    disp = np.array([b.dispatch_time for b in batches])
    return ends, disp


class TestOnlineBuffer:
    def test_size_triggered_dispatch(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 2, 10.0))
        assert buf.observe(0.0) == []
        out = buf.observe(0.5)
        assert len(out) == 1
        assert out[0].size == 2
        assert out[0].dispatch_time == 0.5

    def test_timeout_triggered_dispatch(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 10, 0.1))
        buf.observe(0.0)
        out = buf.poll(0.2)
        assert len(out) == 1
        assert out[0].dispatch_time == pytest.approx(0.1)

    def test_waits_never_exceed_timeout(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 4, 0.05))
        rng = np.random.default_rng(0)
        ts = np.sort(rng.uniform(0, 5, 200))
        batches = []
        for t in ts:
            batches.extend(buf.observe(t))
        batches.extend(buf.flush())
        for b in batches:
            assert np.all(b.waits() <= 0.05 + 1e-12)
            assert np.all(b.waits() >= -1e-12)

    def test_rejects_time_travel(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 2, 1.0))
        buf.observe(1.0)
        with pytest.raises(ValueError):
            buf.observe(0.5)

    def test_reconfigure_applies_to_future_batches(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 4, 10.0))
        buf.observe(0.0)
        buf.reconfigure(BatchConfig(1024.0, 2, 10.0))
        out = buf.observe(0.1)
        assert len(out) == 1 and out[0].size == 2

    def test_flush_empties_buffer(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 100, 50.0))
        for t in [0.0, 0.1, 0.2]:
            buf.observe(t)
        assert buf.pending == 3
        out = buf.flush()
        assert buf.pending == 0
        assert sum(b.size for b in out) == 3

    def test_indices_are_sequential(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 2, 1.0))
        all_batches = []
        for t in [0.0, 0.1, 0.2, 0.3]:
            all_batches.extend(buf.observe(t))
        idx = np.concatenate([b.indices for b in all_batches])
        np.testing.assert_allclose(idx, [0, 1, 2, 3])


class TestBufferMatchesSimulator:
    """The online buffer and the vectorized batch former must agree."""

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=100, unique=True),
        st.integers(1, 8),
        st.floats(0.01, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_same_partition_and_dispatches(self, raw, b, t):
        ts = np.sort(np.asarray(raw))
        cfg = BatchConfig(1024.0, b, t)
        sim_ends, sim_disp = form_batches(ts, b, t)
        buf_ends, buf_disp = drive(ts, cfg)
        np.testing.assert_array_equal(buf_ends, sim_ends)
        np.testing.assert_allclose(buf_disp, sim_disp, atol=1e-12)

    def test_bursty_trace_agreement(self):
        rng = np.random.default_rng(42)
        # clustered arrivals stress the timeout-vs-size tie logic
        ts = np.sort(np.concatenate([rng.uniform(0, 0.01, 30), rng.uniform(5, 5.01, 30)]))
        sim_ends, sim_disp = form_batches(ts, 8, 0.05)
        buf_ends, buf_disp = drive(ts, BatchConfig(1024.0, 8, 0.05))
        np.testing.assert_array_equal(buf_ends, sim_ends)
        np.testing.assert_allclose(buf_disp, sim_disp, atol=1e-12)

    def test_bt_grid_agreement(self):
        """Exhaustive (B, T) sweep: for every grid point and several traces
        the online buffer's full schedule — including the end-of-stream
        flush — matches the vectorized batch former."""
        rng = np.random.default_rng(7)
        traces = [
            np.sort(rng.uniform(0.0, 3.0, 40)),
            np.cumsum(rng.exponential(0.02, size=60)),
            np.sort(np.concatenate([
                rng.uniform(0.0, 0.01, 10), rng.uniform(1.0, 1.01, 10),
            ])),
        ]
        for ts in traces:
            for b in (1, 2, 3, 8, 64):
                for t in (0.0, 0.005, 0.05, 0.5, 10.0):
                    sim_ends, sim_disp = form_batches(ts, b, t)
                    buf_ends, buf_disp = drive(ts, BatchConfig(1024.0, b, t))
                    np.testing.assert_array_equal(buf_ends, sim_ends)
                    np.testing.assert_allclose(buf_disp, sim_disp, atol=1e-12)


class TestFlushRegression:
    """Regression: flush() used to stamp every drained batch with the whole
    buffer's newest arrival (inflated by max(due, pending[-1])), could
    dispatch after the caller's ``now``, and held full batches until the
    first member's deadline."""

    def _loaded_buffer(self):
        # B=8 collects 7 arrivals without dispatching; reconfiguring to B=2
        # leaves the flush to drain three full batches plus one partial.
        buf = BatchingBuffer(BatchConfig(1024.0, 8, 10.0))
        for t in np.arange(0.0, 0.61, 0.1):
            assert buf.observe(float(t)) == []
        buf.reconfigure(BatchConfig(1024.0, 2, 10.0))
        return buf

    def test_full_batches_dispatch_at_own_member(self):
        out = self._loaded_buffer().flush()
        disp = [b.dispatch_time for b in out]
        # Full pairs leave when their 2nd member arrived; the lone tail
        # waits out its own timeout (0.6 + 10).
        np.testing.assert_allclose(disp, [0.1, 0.3, 0.5, 10.6])
        assert [b.size for b in out] == [2, 2, 2, 1]

    def test_now_caps_partial_batches(self):
        out = self._loaded_buffer().flush(now=1.0)
        disp = [b.dispatch_time for b in out]
        np.testing.assert_allclose(disp, [0.1, 0.3, 0.5, 1.0])

    def test_never_before_own_newest_member(self):
        # A force-flush "now" earlier than the tail's arrival cannot send
        # the batch back in time.
        out = self._loaded_buffer().flush(now=0.05)
        assert out[-1].dispatch_time == pytest.approx(0.6)

    def test_dispatch_never_after_now_beyond_arrivals(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 10, 50.0))
        for t in [0.0, 0.1, 0.2]:
            buf.observe(t)
        out = buf.flush(now=0.2)
        assert len(out) == 1
        assert out[0].dispatch_time == pytest.approx(0.2)

    def test_flush_matches_simulator_end_of_stream(self):
        # Without "now", a partial batch flushes at first + timeout —
        # exactly the vectorized simulator's end-of-stream rule.
        ts = np.array([0.0, 0.1, 0.2])
        _, sim_disp = form_batches(ts, 10, 0.5)
        buf = BatchingBuffer(BatchConfig(1024.0, 10, 0.5))
        for t in ts:
            buf.observe(float(t))
        out = buf.flush()
        assert out[0].dispatch_time == pytest.approx(sim_disp[-1])

    def test_nonpositive_waits_never_happen(self):
        for b in self._loaded_buffer().flush():
            assert np.all(b.waits() >= -1e-12)


class TestMidStreamReconfigure:
    """reconfigure(config, now=...) with requests pending: the serving
    engine's live path, where a new (M, B, T) must immediately drain any
    batches the stricter policy makes due."""

    def test_shrinking_b_below_pending_dispatches_now(self):
        # 5 pending under B=8; switching to B=2 owes two full batches at
        # the switch instant and keeps the odd request buffered.
        buf = BatchingBuffer(BatchConfig(1024.0, 8, 10.0))
        for t in [0.0, 0.1, 0.2, 0.3, 0.4]:
            assert buf.observe(t) == []
        out = buf.reconfigure(BatchConfig(1024.0, 2, 10.0), now=0.5)
        assert [b.size for b in out] == [2, 2]
        assert [b.dispatch_time for b in out] == [0.5, 0.5]
        assert buf.pending == 1

    def test_shortening_t_past_elapsed_wait_dispatches_due(self):
        # The head has waited 0.4 when T drops to 0.1: its (new) deadline
        # 0.0 + 0.1 already passed, so the batch leaves at that deadline,
        # exactly like a timeout the buffer had missed.
        buf = BatchingBuffer(BatchConfig(1024.0, 8, 10.0))
        for t in [0.0, 0.05, 0.4]:
            assert buf.observe(t) == []
        out = buf.reconfigure(BatchConfig(1024.0, 8, 0.1), now=0.4)
        assert len(out) == 1
        # Only the arrivals by that deadline ride along; 0.4 stays buffered
        # with its own fresh deadline under the new T.
        assert out[0].size == 2
        assert out[0].dispatch_time == pytest.approx(0.1)
        assert buf.pending == 1
        assert buf.next_deadline() == pytest.approx(0.5)

    def test_loosening_keeps_pending(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 4, 0.2))
        buf.observe(0.0)
        out = buf.reconfigure(BatchConfig(1024.0, 8, 5.0), now=0.1)
        assert out == []
        assert buf.pending == 1
        assert buf.next_deadline() == pytest.approx(5.0)

    def test_without_now_defers_to_next_observe(self):
        # The offline idiom (no ``now``) still applies lazily: nothing
        # leaves at the switch, and each later observe drains one batch.
        buf = BatchingBuffer(BatchConfig(1024.0, 8, 10.0))
        for t in [0.0, 0.1, 0.2]:
            buf.observe(t)
        assert buf.reconfigure(BatchConfig(1024.0, 2, 10.0)) == []
        assert [b.size for b in buf.observe(0.3)] == [2]
        assert [b.size for b in buf.observe(0.4)] == [2]
        assert buf.pending == 1

    def test_next_deadline_tracks_head(self):
        buf = BatchingBuffer(BatchConfig(1024.0, 4, 0.5))
        assert buf.next_deadline() is None
        buf.observe(1.0)
        buf.observe(1.2)
        assert buf.next_deadline() == pytest.approx(1.5)
        buf.poll(2.0)
        assert buf.next_deadline() is None
