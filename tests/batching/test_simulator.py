"""Tests for batch formation and the ground-truth simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batching.config import BatchConfig, config_grid
from repro.batching.simulator import (
    form_batches,
    ground_truth_optimum,
    simulate,
    simulate_grid,
)
from repro.serverless.platform import ServerlessPlatform

PLAT = ServerlessPlatform()


class TestFormBatches:
    def test_size_dispatch(self):
        ts = np.array([0.0, 0.01, 0.02, 0.03])
        ends, disp = form_batches(ts, batch_size=2, timeout=10.0)
        np.testing.assert_allclose(ends, [2, 4])
        np.testing.assert_allclose(disp, [0.01, 0.03])

    def test_timeout_dispatch(self):
        ts = np.array([0.0, 1.0, 2.0])
        ends, disp = form_batches(ts, batch_size=10, timeout=0.5)
        np.testing.assert_allclose(ends, [1, 2, 3])
        np.testing.assert_allclose(disp, [0.5, 1.5, 2.5])

    def test_timeout_zero_dispatches_singletons(self):
        ts = np.array([0.0, 0.5, 0.9])
        ends, disp = form_batches(ts, batch_size=8, timeout=0.0)
        np.testing.assert_allclose(ends, [1, 2, 3])
        np.testing.assert_allclose(disp, ts)

    def test_mixed_regimes(self):
        # Burst of 3 fills B=3 instantly; the straggler times out alone.
        ts = np.array([0.0, 0.001, 0.002, 5.0])
        ends, disp = form_batches(ts, batch_size=3, timeout=0.1)
        np.testing.assert_allclose(ends, [3, 4])
        np.testing.assert_allclose(disp, [0.002, 5.1])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            form_batches(np.array([1.0, 0.5]), 2, 0.1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            form_batches(np.array([0.0]), 0, 0.1)
        with pytest.raises(ValueError):
            form_batches(np.array([0.0]), 1, -1.0)

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=200),
        st.integers(1, 16),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_invariants(self, raw, b, t):
        """Property: batches partition requests, never exceed B, every
        request waits at most T, and dispatch times are non-decreasing."""
        ts = np.sort(np.asarray(raw))
        ends, disp = form_batches(ts, b, t)
        starts = np.concatenate([[0], ends[:-1]])
        sizes = ends - starts
        assert sizes.sum() == ts.size
        assert np.all(sizes >= 1)
        assert np.all(sizes <= b)
        assert np.all(np.diff(disp) >= -1e-12)
        for s, e, d in zip(starts, ends, disp):
            waits = d - ts[s:e]
            assert np.all(waits >= -1e-12)
            assert np.all(waits <= t + 1e-12)
            # Dispatch is either the B-th arrival or the deadline.
            assert (e - s == b and d == pytest.approx(ts[e - 1])) or d == pytest.approx(
                ts[s] + t
            )


class TestSimulate:
    def test_empty_trace(self):
        r = simulate(np.array([]), BatchConfig(1024.0, 4, 0.1), PLAT)
        assert r.n_requests == 0 and r.n_batches == 0
        assert np.isnan(r.cost_per_request)

    def test_latency_decomposition(self):
        ts = np.array([0.0, 0.01, 0.02])
        cfg = BatchConfig(1792.0, 3, 1.0)
        r = simulate(ts, cfg, PLAT)
        svc = PLAT.profile.service_time(1792.0, 3)
        np.testing.assert_allclose(r.latencies, 0.02 - ts + svc, atol=1e-12)
        np.testing.assert_allclose(r.waits, 0.02 - ts, atol=1e-12)

    def test_costs_match_pricing(self):
        ts = np.linspace(0, 1, 20)
        cfg = BatchConfig(1024.0, 5, 0.5)
        r = simulate(ts, cfg, PLAT)
        for size, cost in zip(r.batch_sizes, r.batch_costs):
            svc = PLAT.profile.service_time(1024.0, size)
            assert cost == pytest.approx(PLAT.pricing.invocation_cost(1024.0, svc))

    def test_percentiles_and_slo(self):
        ts = np.linspace(0, 1, 100)
        r = simulate(ts, BatchConfig(256.0, 16, 0.5), PLAT)
        p = r.latency_percentiles((50.0, 95.0))
        assert p.shape == (2,)
        assert p[0] <= p[1]
        assert r.violates_slo(1e-6)
        assert not r.violates_slo(1e6)

    def test_larger_batch_cheaper_but_slower(self):
        """The Fig. 1b/1c trade-off on a steady stream."""
        ts = np.arange(0, 10, 0.005)  # 200 req/s
        small = simulate(ts, BatchConfig(1024.0, 2, 0.2), PLAT)
        large = simulate(ts, BatchConfig(1024.0, 16, 0.2), PLAT)
        assert large.cost_per_request < small.cost_per_request
        assert large.latency_percentile(95) > small.latency_percentile(95)

    def test_more_memory_faster_but_pricier(self):
        """The Fig. 1a trade-off."""
        ts = np.arange(0, 10, 0.005)
        lo = simulate(ts, BatchConfig(256.0, 8, 0.1), PLAT)
        hi = simulate(ts, BatchConfig(3008.0, 8, 0.1), PLAT)
        assert hi.latency_percentile(95) < lo.latency_percentile(95)
        assert hi.cost_per_request > lo.cost_per_request


class TestGroundTruth:
    def test_optimum_meets_slo_and_is_cheapest(self):
        rng = np.random.default_rng(0)
        ts = np.sort(rng.uniform(0, 10, 2000))
        grid = config_grid(
            memories=(512.0, 1024.0, 1792.0),
            batch_sizes=(1, 4, 8),
            timeouts=(0.0, 0.05, 0.1),
        )
        best, res = ground_truth_optimum(ts, grid, PLAT, slo=0.1)
        assert not res.violates_slo(0.1)
        # No other feasible config is cheaper.
        for r in simulate_grid(ts, grid, PLAT):
            if not r.violates_slo(0.1):
                assert res.cost_per_request <= r.cost_per_request + 1e-15

    def test_infeasible_falls_back_to_fastest(self):
        ts = np.array([0.0, 1.0, 2.0])
        grid = config_grid(memories=(256.0,), batch_sizes=(4,), timeouts=(0.2,))
        best, res = ground_truth_optimum(ts, grid, PLAT, slo=1e-9)
        assert best in grid  # returns something rather than failing

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ground_truth_optimum(np.array([0.0]), [], PLAT, slo=0.1)


class TestSimulateGridEquivalence:
    """The (B, T)-grouped fast grid must match per-config simulation for
    every grid point."""

    TS = np.sort(np.random.default_rng(0).uniform(0, 20.0, 800))

    def test_matches_per_config_simulate_bit_identical(self):
        grid = config_grid(
            memories=(256.0, 1024.0, 3008.0),
            batch_sizes=(1, 4, 16),
            timeouts=(0.0, 0.05, 0.2),
        )
        fast = simulate_grid(self.TS, grid, PLAT)
        assert len(fast) == len(grid)
        for cfg, r in zip(grid, fast):
            ref = simulate(self.TS, cfg, PLAT)
            assert r.config == cfg
            np.testing.assert_array_equal(r.latencies, ref.latencies)
            np.testing.assert_array_equal(r.waits, ref.waits)
            np.testing.assert_array_equal(r.batch_sizes, ref.batch_sizes)
            np.testing.assert_array_equal(r.dispatch_times, ref.dispatch_times)
            np.testing.assert_array_equal(r.batch_costs, ref.batch_costs)

    def test_matches_under_concurrency_limit(self):
        from repro.serverless.platform import ServerlessPlatform

        plat = ServerlessPlatform(concurrency_limit=2)
        grid = config_grid(
            memories=(512.0, 1792.0), batch_sizes=(2, 8), timeouts=(0.01, 0.1)
        )
        for cfg, r in zip(grid, simulate_grid(self.TS[:200], grid, plat)):
            ref = simulate(self.TS[:200], cfg, plat)
            np.testing.assert_array_equal(r.latencies, ref.latencies)
            np.testing.assert_array_equal(r.batch_costs, ref.batch_costs)

    def test_cold_start_sweep_is_order_independent(self):
        """With cold starts the sweep draws from per-config spawned
        generators, so results depend on the config's position only — not
        on the platform's shared-stream consumption history."""
        from repro.serverless.platform import ServerlessPlatform
        from repro.serverless.service_profile import ColdStartModel

        def fresh():
            return ServerlessPlatform(
                cold_start=ColdStartModel(cold_probability=0.5), seed=9
            )

        grid = config_grid(
            memories=(512.0, 1792.0), batch_sizes=(2, 8), timeouts=(0.0, 0.1)
        )
        ts = self.TS[:300]
        sweep = simulate_grid(ts, grid, fresh())
        # Identical on a platform whose shared stream was already consumed.
        dirty = fresh()
        dirty._rng.random(1000)
        again = simulate_grid(ts, grid, dirty)
        for a, b in zip(sweep, again):
            np.testing.assert_array_equal(a.latencies, b.latencies)
        # And each entry equals per-config simulation with the spawned rng.
        plat = fresh()
        for i, (cfg, r) in enumerate(zip(grid, sweep)):
            ref = simulate(ts, cfg, plat, rng=plat.spawn_rng(i))
            np.testing.assert_array_equal(r.latencies, ref.latencies)

    def test_empty_inputs(self):
        grid = config_grid(memories=(512.0,), batch_sizes=(1, 2), timeouts=(0.0,))
        assert simulate_grid(np.array([]), grid, PLAT)[0].n_requests == 0
        assert simulate_grid(self.TS, [], PLAT) == []

    def test_grid_telemetry(self):
        from repro.telemetry import MetricsRegistry, use_registry

        grid = config_grid(memories=(512.0, 1024.0), batch_sizes=(4,), timeouts=(0.05,))
        with use_registry(MetricsRegistry()) as reg:
            simulate_grid(self.TS[:100], grid, PLAT)
        assert reg.counter("simulator.grid_sweeps").value == 1
        assert reg.counter("simulator.grid_configs").value == len(grid)
        assert reg.histogram("simulator.grid_time").count == 1
        # Per-config request accounting matches the naive path's.
        assert reg.counter("simulator.requests").value == 100 * len(grid)
