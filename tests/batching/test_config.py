"""Tests for batching configurations and the candidate grid (Eq. 10)."""

import numpy as np
import pytest

from repro.batching.config import (
    DEFAULT_BATCH_SIZES,
    DEFAULT_MEMORIES,
    DEFAULT_TIMEOUTS,
    BatchConfig,
    config_grid,
    grid_features,
)


class TestBatchConfig:
    def test_valid_construction(self):
        c = BatchConfig(1024.0, 8, 0.05)
        assert c.memory_mb == 1024.0

    def test_eq10_bounds(self):
        with pytest.raises(ValueError):
            BatchConfig(64.0, 1, 0.0)  # below 128 MB (Eq. 10e)
        with pytest.raises(ValueError):
            BatchConfig(20000.0, 1, 0.0)  # above 10240 MB
        with pytest.raises(ValueError):
            BatchConfig(1024.0, 0, 0.0)  # Eq. 10c
        with pytest.raises(ValueError):
            BatchConfig(1024.0, 1, -0.1)  # Eq. 10d

    def test_as_array(self):
        np.testing.assert_allclose(
            BatchConfig(512.0, 4, 0.1).as_array(), [512.0, 4.0, 0.1]
        )

    def test_hashable_and_ordered(self):
        a = BatchConfig(512.0, 4, 0.1)
        b = BatchConfig(512.0, 4, 0.1)
        assert a == b and hash(a) == hash(b)
        assert BatchConfig(256.0, 1, 0.0) < a

    def test_str_format(self):
        assert "B=4" in str(BatchConfig(512.0, 4, 0.1))


class TestGrid:
    def test_skips_redundant_b1_timeouts(self):
        grid = config_grid()
        b1 = [c for c in grid if c.batch_size == 1]
        assert all(c.timeout == 0.0 for c in b1)
        assert len(b1) == len(DEFAULT_MEMORIES)

    def test_full_size(self):
        grid = config_grid()
        expected = len(DEFAULT_MEMORIES) * (
            (len(DEFAULT_BATCH_SIZES) - 1) * len(DEFAULT_TIMEOUTS) + 1
        )
        assert len(grid) == expected

    def test_custom_grid(self):
        grid = config_grid(memories=(512.0,), batch_sizes=(2, 4), timeouts=(0.0, 0.1))
        assert len(grid) == 4

    def test_grid_features_matrix(self):
        grid = config_grid(memories=(512.0,), batch_sizes=(2,), timeouts=(0.0, 0.1))
        feats = grid_features(grid)
        assert feats.shape == (2, 3)
        np.testing.assert_allclose(feats[:, 0], 512.0)

    def test_grid_features_empty_rejected(self):
        with pytest.raises(ValueError):
            grid_features([])
