"""Tests for the MAP process class and standard constructors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrival.map_process import MAP, erlang_map, hyperexp_map, poisson_map
from repro.arrival.mmpp import mmpp2


class TestValidation:
    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            MAP(np.zeros((2, 3)), np.zeros((2, 3)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            MAP(-np.eye(2), np.ones((3, 3)))

    def test_rejects_bad_row_sums(self):
        with pytest.raises(ValueError):
            MAP(np.array([[-2.0]]), np.array([[1.0]]))

    def test_rejects_negative_d1(self):
        d0 = np.array([[-1.0, 2.0], [0.5, -1.5]])
        d1 = np.array([[0.0, -1.0], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MAP(d0, d1)

    def test_rejects_nonnegative_diagonal(self):
        with pytest.raises(ValueError):
            MAP(np.array([[0.0]]), np.array([[0.0]]))


class TestPoisson:
    def test_moments(self):
        m = poisson_map(5.0)
        assert m.arrival_rate() == pytest.approx(5.0)
        assert m.mean_interarrival() == pytest.approx(0.2)
        assert m.scv() == pytest.approx(1.0)
        np.testing.assert_allclose(m.autocorrelation(5), np.zeros(5), atol=1e-12)

    def test_idi_is_one(self):
        assert poisson_map(3.0).idi() == pytest.approx(1.0, abs=1e-9)

    def test_sample_rate(self):
        ts = poisson_map(50.0).sample(duration=100.0, seed=0)
        assert ts.size == pytest.approx(5000, rel=0.1)
        assert np.all(np.diff(ts) >= 0)
        assert ts[-1] <= 100.0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            poisson_map(0.0)


class TestErlang:
    def test_scv_below_one(self):
        m = erlang_map(2.0, stages=4)
        assert m.mean_interarrival() == pytest.approx(0.5)
        assert m.scv() == pytest.approx(0.25, rel=1e-6)

    def test_renewal_no_autocorrelation(self):
        m = erlang_map(1.0, stages=3)
        np.testing.assert_allclose(m.autocorrelation(3), np.zeros(3), atol=1e-10)


class TestHyperexp:
    def test_matches_mean_and_scv(self):
        m = hyperexp_map(4.0, scv=8.0)
        assert m.mean_interarrival() == pytest.approx(0.25, rel=1e-9)
        assert m.scv() == pytest.approx(8.0, rel=1e-6)

    def test_renewal_no_autocorrelation(self):
        m = hyperexp_map(1.0, scv=3.0)
        np.testing.assert_allclose(m.autocorrelation(4), np.zeros(4), atol=1e-10)

    def test_requires_scv_above_one(self):
        with pytest.raises(ValueError):
            hyperexp_map(1.0, scv=0.8)


class TestMMPP2:
    def test_stationary_phase_closed_form(self):
        m = mmpp2(10.0, 1.0, switch12=0.5, switch21=1.5)
        theta = m.stationary_phase()
        np.testing.assert_allclose(theta, [0.75, 0.25], atol=1e-9)

    def test_arrival_rate_closed_form(self):
        m = mmpp2(10.0, 1.0, switch12=0.5, switch21=1.5)
        assert m.arrival_rate() == pytest.approx(0.75 * 10 + 0.25 * 1, rel=1e-9)

    def test_positive_autocorrelation(self):
        m = mmpp2(50.0, 1.0, switch12=0.2, switch21=0.2)
        rho = m.autocorrelation(5)
        assert np.all(rho > 0)
        assert np.all(np.diff(rho) < 0)  # geometric-like decay

    def test_idi_exceeds_one_for_bursty(self):
        m = mmpp2(50.0, 1.0, switch12=0.2, switch21=0.2)
        assert m.idi(max_lag=500) > 5.0

    def test_sample_duration_vs_count_modes(self):
        m = mmpp2(20.0, 2.0, 1.0, 1.0)
        by_count = m.sample(n_arrivals=100, seed=1)
        assert by_count.size == 100
        by_time = m.sample(duration=10.0, seed=1)
        assert by_time.size > 0 and by_time[-1] <= 10.0
        with pytest.raises(ValueError):
            m.sample()
        with pytest.raises(ValueError):
            m.sample(n_arrivals=10, duration=1.0)

    def test_sampled_rate_matches_analytic(self):
        m = mmpp2(100.0, 10.0, 0.5, 0.5)
        ts = m.sample(duration=200.0, seed=3)
        assert ts.size / 200.0 == pytest.approx(m.arrival_rate(), rel=0.15)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            mmpp2(-1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            mmpp2(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            mmpp2(1.0, 1.0, 0.0, 1.0)


class TestSamplingDeterminism:
    def test_same_seed_same_trace(self):
        m = mmpp2(20.0, 2.0, 1.0, 1.0)
        np.testing.assert_allclose(
            m.sample(n_arrivals=50, seed=7), m.sample(n_arrivals=50, seed=7)
        )

    def test_different_seeds_differ(self):
        m = mmpp2(20.0, 2.0, 1.0, 1.0)
        a = m.sample(n_arrivals=50, seed=1)
        b = m.sample(n_arrivals=50, seed=2)
        assert not np.allclose(a, b)

    def test_start_phase_validation(self):
        m = mmpp2(20.0, 2.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            m.sample(n_arrivals=5, start_phase=5)


@given(
    st.floats(1.0, 100.0),
    st.floats(0.01, 1.0),
    st.floats(0.1, 5.0),
    st.floats(0.1, 5.0),
)
@settings(max_examples=30, deadline=None)
def test_mmpp2_moment_identities(r1, r2_frac, s12, s21):
    """Property: analytic mean interarrival equals 1/arrival_rate, SCV >= 1
    for any MMPP2, and the stationary phase vector is a distribution."""
    m = mmpp2(r1, r1 * r2_frac, s12, s21)
    theta = m.stationary_phase()
    assert theta.shape == (2,)
    assert abs(theta.sum() - 1) < 1e-8
    lam = m.arrival_rate()
    assert m.mean_interarrival() == pytest.approx(1.0 / lam, rel=1e-6)
    assert m.scv() >= 1.0 - 1e-9  # MMPPs are never smoother than Poisson
