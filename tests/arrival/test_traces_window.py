"""Tests for the synthetic traces (Fig. 4/5 statistics) and windowing."""

import numpy as np
import pytest

from repro.arrival.traces import (
    Trace,
    alibaba_like,
    azure_like,
    map_synthetic,
    twitter_like,
)
from repro.arrival.window import latest_window, sample_windows, sliding_windows


def small(gen, **kw):
    return gen(seed=0, n_segments=4, segment_duration=20.0, base_rate=60.0, **kw)


class TestTraceContainer:
    def test_segments_partition_timestamps(self):
        tr = small(azure_like)
        total = sum(tr.segment(i).size for i in range(tr.n_segments))
        assert total == tr.timestamps.size

    def test_segment_relative_offsets(self):
        tr = small(azure_like)
        seg = tr.segment(2, relative=True)
        assert np.all(seg >= 0) and np.all(seg <= tr.segment_duration)
        absolute = tr.segment(2, relative=False)
        np.testing.assert_allclose(absolute - 2 * tr.segment_duration, seg)

    def test_segment_bounds(self):
        tr = small(azure_like)
        with pytest.raises(IndexError):
            tr.segment(99)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            Trace("bad", np.array([2.0, 1.0]), 10.0, 1)

    def test_split(self):
        tr = small(azure_like)
        head, tail = tr.split(2)
        assert head.n_segments == 2 and tail.n_segments == 2
        assert head.timestamps.size + tail.timestamps.size == tr.timestamps.size
        assert np.all(tail.timestamps >= 0)
        np.testing.assert_allclose(
            tail.segment(0), tr.segment(2), atol=1e-9
        )

    def test_split_bounds(self):
        tr = small(azure_like)
        with pytest.raises(ValueError):
            tr.split(0)

    def test_rate_series_shape(self):
        tr = small(azure_like)
        centers, rates = tr.rate_series(bins_per_segment=5)
        assert centers.size == 4 * 5
        assert rates.sum() * (tr.segment_duration / 5) == pytest.approx(
            tr.timestamps.size, rel=0.01
        )


class TestTraceStatistics:
    """The burstiness ordering the paper's Fig. 5 establishes."""

    def test_determinism(self):
        a = small(azure_like)
        b = small(azure_like)
        np.testing.assert_allclose(a.timestamps, b.timestamps)

    def test_idc_ordering_twitter_mildest(self):
        tw = twitter_like(seed=1, n_segments=6, segment_duration=30.0)
        az = azure_like(seed=1, n_segments=6, segment_duration=30.0)
        al = alibaba_like(seed=1, n_segments=6, segment_duration=30.0)
        assert np.median(tw.idc_series()) < np.median(az.idc_series())
        assert np.median(az.idc_series()) < np.median(al.idc_series())

    def test_twitter_idc_band(self):
        tw = twitter_like(seed=2, n_segments=8, segment_duration=30.0)
        med = np.median(tw.idc_series())
        assert 1.5 < med < 15.0  # paper: "around 4 for most periods"

    def test_bursty_traces_have_high_idc(self):
        for gen in (alibaba_like, map_synthetic):
            tr = gen(seed=3, n_segments=6, segment_duration=30.0)
            assert np.max(tr.idc_series()) > 50.0

    def test_alibaba_rate_swings(self):
        tr = alibaba_like(seed=0, n_segments=12, segment_duration=30.0)
        rates = np.array([tr.segment_rate(i) for i in range(12)])
        assert rates.max() / max(rates.min(), 1e-9) > 3.0


class TestWindows:
    def test_latest_window_exact(self):
        x = np.arange(10.0)
        np.testing.assert_allclose(latest_window(x, 4), [6, 7, 8, 9])

    def test_latest_window_pads_left_with_mean(self):
        x = np.array([2.0, 4.0])
        np.testing.assert_allclose(latest_window(x, 4), [3.0, 3.0, 2.0, 4.0])

    def test_latest_window_empty(self):
        np.testing.assert_allclose(latest_window(np.array([]), 3), np.zeros(3))

    def test_latest_window_custom_pad(self):
        np.testing.assert_allclose(
            latest_window(np.array([1.0]), 3, pad_value=9.0), [9.0, 9.0, 1.0]
        )

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            latest_window(np.ones(3), 0)

    def test_latest_window_rejects_nan(self):
        # Regression: the default pad is the sample *mean*, so one NaN
        # inter-arrival used to poison the entire padded window (and every
        # drift score computed from it) instead of failing loudly.
        with pytest.raises(ValueError, match="non-finite"):
            latest_window(np.array([1.0, np.nan, 2.0]), 8)

    def test_latest_window_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            latest_window(np.array([np.inf, 1.0]), 2)

    def test_latest_window_error_names_first_bad_index(self):
        with pytest.raises(ValueError, match="index 1"):
            latest_window(np.array([1.0, np.nan, np.nan]), 4)

    def test_empty_sample_still_pads_with_zero(self):
        # The finiteness check must not break the documented empty-sample
        # fallback (no data -> all-zero window).
        np.testing.assert_allclose(latest_window(np.array([]), 4), np.zeros(4))

    def test_sliding_windows(self):
        x = np.arange(6.0)
        w = sliding_windows(x, 3, stride=2)
        np.testing.assert_allclose(w, [[0, 1, 2], [2, 3, 4]])

    def test_sliding_windows_short_input(self):
        assert sliding_windows(np.ones(2), 5).shape == (0, 5)

    def test_sample_windows_shape_and_content(self):
        rng = np.random.default_rng(0)
        x = np.arange(100.0)
        w = sample_windows(x, 10, 7, rng)
        assert w.shape == (7, 10)
        # Each window is a contiguous run.
        np.testing.assert_allclose(np.diff(w, axis=1), np.ones((7, 9)))

    def test_sample_windows_too_short(self):
        with pytest.raises(ValueError):
            sample_windows(np.ones(3), 10, 2, np.random.default_rng(0))
