"""Tests for the KPC-style numerical MAP fit (the expensive path BATCH
uses; kept small here via reduced restarts/function evaluations)."""

import numpy as np
import pytest

from repro.arrival.fitting import fit_map_kpc
from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness


@pytest.fixture(scope="module")
def bursty_sample():
    proc = mmpp2_with_burstiness(200.0, 1.8, 2.0, 0.4)
    return np.diff(proc.sample(duration=60.0, seed=0))


class TestFitMapKpc:
    def test_returns_valid_map_of_requested_order(self, bursty_sample):
        fitted, report = fit_map_kpc(bursty_sample, order=3, restarts=2, max_nfev=80)
        assert fitted.order == 3 or report.kind != "kpc-3"  # fallback allowed
        # Either way the result is a valid, sampleable MAP.
        ts = fitted.sample(n_arrivals=50, seed=1)
        assert ts.size == 50

    def test_matches_mean_closely(self, bursty_sample):
        fitted, report = fit_map_kpc(bursty_sample, order=3, restarts=3, max_nfev=120)
        assert fitted.mean_interarrival() == pytest.approx(report.target_mean, rel=0.15)

    def test_captures_positive_correlation(self, bursty_sample):
        fitted, report = fit_map_kpc(bursty_sample, order=3, restarts=3, max_nfev=120)
        if report.kind.startswith("kpc"):
            assert float(fitted.autocorrelation(1)[0]) > 0.0

    def test_poisson_data(self):
        x = np.diff(poisson_map(100.0).sample(duration=60.0, seed=2))
        fitted, _ = fit_map_kpc(x, order=2, restarts=2, max_nfev=60)
        assert fitted.mean_interarrival() == pytest.approx(0.01, rel=0.2)
        assert abs(fitted.scv() - 1.0) < 0.5

    def test_validation(self, bursty_sample):
        with pytest.raises(ValueError):
            fit_map_kpc(bursty_sample, order=1)
        with pytest.raises(ValueError):
            fit_map_kpc(bursty_sample, restarts=0)

    def test_more_lags_than_data_tolerated(self):
        x = np.array([0.01, 0.02, 0.015, 0.03])
        fitted, _ = fit_map_kpc(x, order=2, n_lags=10, restarts=1, max_nfev=30)
        assert fitted.order >= 1  # survives degenerate input
