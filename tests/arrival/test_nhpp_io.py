"""Tests for NHPP sampling, stream composition, and trace persistence."""

import numpy as np
import pytest

from repro.arrival.io import export_csv, import_csv, load_trace, save_trace
from repro.arrival.nhpp import diurnal_rate, sample_nhpp, superpose, thin
from repro.arrival.traces import Trace, azure_like


class TestSampleNhpp:
    def test_constant_rate_matches_poisson(self):
        ts = sample_nhpp(lambda t: np.full_like(t, 50.0), duration=100.0,
                         rate_bound=50.0, seed=0)
        assert ts.size == pytest.approx(5000, rel=0.1)
        assert np.all(np.diff(ts) >= 0)
        assert ts[-1] < 100.0

    def test_diurnal_modulation_visible(self):
        rate = diurnal_rate(100.0, amplitude=0.9, period=100.0, phase=0.0)
        ts = sample_nhpp(rate, duration=100.0, rate_bound=200.0, seed=1)
        # First half-period (rising sine) should be busier than the second.
        first = (ts < 50).sum()
        second = (ts >= 50).sum()
        assert first > 1.3 * second

    def test_rate_bound_violation_rejected(self):
        with pytest.raises(ValueError):
            sample_nhpp(lambda t: np.full_like(t, 100.0), duration=10.0,
                        rate_bound=50.0, seed=0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            sample_nhpp(lambda t: np.full_like(t, -1.0), duration=10.0,
                        rate_bound=50.0, seed=0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            sample_nhpp(lambda t: t, duration=0.0, rate_bound=1.0)
        with pytest.raises(ValueError):
            diurnal_rate(0.0)
        with pytest.raises(ValueError):
            diurnal_rate(1.0, amplitude=1.5)


class TestComposition:
    def test_superpose_merges_sorted(self):
        a = np.array([0.0, 2.0])
        b = np.array([1.0, 3.0])
        np.testing.assert_allclose(superpose(a, b), [0.0, 1.0, 2.0, 3.0])

    def test_superpose_empty_args_rejected(self):
        with pytest.raises(ValueError):
            superpose()

    def test_thin_keeps_fraction(self):
        ts = np.linspace(0, 100, 100_000)
        kept = thin(ts, 0.3, seed=0)
        assert kept.size == pytest.approx(30_000, rel=0.05)
        assert np.all(np.diff(kept) >= 0)

    def test_thin_probability_one_is_identity(self):
        ts = np.arange(10.0)
        np.testing.assert_allclose(thin(ts, 1.0, seed=0), ts)

    def test_thin_invalid_probability(self):
        with pytest.raises(ValueError):
            thin(np.arange(3.0), 0.0)


class TestTraceIO:
    @pytest.fixture()
    def trace(self):
        return azure_like(seed=0, n_segments=3, segment_duration=10.0, base_rate=40.0)

    def test_npz_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_allclose(loaded.timestamps, trace.timestamps)
        assert loaded.name == trace.name
        assert loaded.segment_duration == trace.segment_duration
        assert loaded.n_segments == trace.n_segments

    def test_csv_roundtrip(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        export_csv(trace, path)
        loaded = import_csv(path)
        np.testing.assert_allclose(loaded.timestamps, trace.timestamps, atol=1e-8)
        assert loaded.n_segments == trace.n_segments

    def test_csv_headerless_needs_params(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("0.5\n1.5\n2.5\n")
        with pytest.raises(ValueError):
            import_csv(path)
        loaded = import_csv(path, segment_duration=1.0, n_segments=3)
        assert loaded.timestamps.size == 3
        assert loaded.name == "raw"

    def test_csv_override_name(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        export_csv(trace, path)
        loaded = import_csv(path, name="custom")
        assert loaded.name == "custom"

    def test_csv_malformed_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# only,two\n1.0\n")
        with pytest.raises(ValueError):
            import_csv(path)
