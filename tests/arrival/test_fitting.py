"""Tests for the KPC-style MAP fitting used by the BATCH baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrival.fitting import correlated_h2_map, empirical_targets, fit_map
from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2


class TestEmpiricalTargets:
    def test_basic(self):
        mean, c2, rho1 = empirical_targets(np.array([1.0, 1.0, 1.0, 1.0]))
        assert mean == pytest.approx(1.0)
        assert c2 == pytest.approx(0.0)
        assert rho1 == pytest.approx(0.0)

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            empirical_targets(np.array([1.0]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            empirical_targets(np.array([1.0, -0.5]))


class TestCorrelatedH2:
    @given(
        st.floats(0.001, 1.0),
        st.floats(1.2, 50.0),
        st.floats(0.0, 0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_match_when_feasible(self, mean, c2, rho1):
        m = correlated_h2_map(mean, c2, rho1)
        assert m.mean_interarrival() == pytest.approx(mean, rel=1e-6)
        assert m.scv() == pytest.approx(c2, rel=1e-5)
        fitted_rho = float(m.autocorrelation(1)[0])
        # Either matched exactly or clamped at the 2-phase feasibility bound.
        assert fitted_rho == pytest.approx(rho1, abs=1e-6) or fitted_rho < rho1

    def test_geometric_acf(self):
        m = correlated_h2_map(0.01, 10.0, 0.2)
        rho = m.autocorrelation(4)
        ratios = rho[1:] / rho[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-6)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            correlated_h2_map(-1.0, 2.0, 0.1)
        with pytest.raises(ValueError):
            correlated_h2_map(1.0, 0.9, 0.1)


class TestFitMap:
    def test_poisson_data_gives_poisson(self):
        ts = poisson_map(100.0).sample(duration=100.0, seed=0)
        fitted, report = fit_map(np.diff(ts))
        assert report.kind == "poisson"
        assert fitted.arrival_rate() == pytest.approx(100.0, rel=0.1)

    def test_deterministic_data_gives_erlang(self):
        x = np.full(500, 0.01) + np.random.default_rng(0).normal(0, 1e-4, 500)
        fitted, report = fit_map(np.abs(x))
        assert report.kind.startswith("erlang")
        assert fitted.scv() < 0.5

    def test_bursty_data_gives_correlated_map(self):
        m = mmpp2(200.0, 5.0, 0.5, 0.5)
        x = np.diff(m.sample(duration=120.0, seed=1))
        fitted, report = fit_map(x)
        assert report.kind == "mmpp2"
        assert report.mean_error < 0.01
        assert fitted.scv() == pytest.approx(report.target_scv, rel=1e-3)
        assert float(fitted.autocorrelation(1)[0]) > 0.0

    def test_uncorrelated_high_variance_gives_hyperexp(self):
        rng = np.random.default_rng(3)
        # i.i.d. hyperexponential-ish: mixture of two exponential scales
        x = np.where(rng.random(20_000) < 0.1, rng.exponential(10.0, 20_000),
                     rng.exponential(0.5, 20_000))
        fitted, report = fit_map(x)
        assert report.kind in ("hyperexp", "mmpp2")
        assert fitted.scv() > 2.0

    def test_fitted_process_is_sampleable(self):
        m = mmpp2(200.0, 5.0, 0.5, 0.5)
        x = np.diff(m.sample(duration=60.0, seed=5))
        fitted, _ = fit_map(x)
        ts = fitted.sample(n_arrivals=100, seed=0)
        assert ts.size == 100
        assert np.all(np.diff(ts) >= 0)

    def test_fit_preserves_mean_rate_across_kinds(self):
        for seed, proc in [(0, poisson_map(50.0)), (1, mmpp2(100.0, 5.0, 1.0, 1.0))]:
            x = np.diff(proc.sample(duration=100.0, seed=seed))
            fitted, report = fit_map(x)
            assert fitted.mean_interarrival() == pytest.approx(report.target_mean, rel=0.05)
