"""Tests for empirical trace statistics (rates, ACF, IDC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2
from repro.arrival.stats import (
    autocorrelation,
    binned_rate,
    counts_idc,
    idc,
    interarrivals,
    mean_rate,
    scv,
)


class TestInterarrivals:
    def test_diff_of_sorted(self):
        np.testing.assert_allclose(interarrivals([0.0, 1.0, 3.0]), [1.0, 2.0])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            interarrivals([1.0, 0.5])

    def test_short_input(self):
        assert interarrivals([1.0]).size == 0


class TestRates:
    def test_mean_rate(self):
        assert mean_rate(np.linspace(0, 10, 101)) == pytest.approx(10.1)

    def test_mean_rate_with_duration(self):
        assert mean_rate(np.array([1.0, 2.0]), duration=10.0) == pytest.approx(0.2)

    def test_empty(self):
        assert mean_rate(np.array([])) == 0.0

    def test_binned_rate(self):
        ts = np.array([0.1, 0.2, 1.5, 2.5, 2.6, 2.7])
        centers, rates = binned_rate(ts, 1.0, t_start=0.0, t_end=3.0)
        np.testing.assert_allclose(centers, [0.5, 1.5, 2.5])
        np.testing.assert_allclose(rates, [2.0, 1.0, 3.0])

    def test_binned_rate_invalid_width(self):
        with pytest.raises(ValueError):
            binned_rate(np.array([1.0]), 0.0)


class TestScv:
    def test_constant_is_zero(self):
        assert scv(np.full(10, 3.0)) == 0.0

    def test_exponential_near_one(self):
        rng = np.random.default_rng(0)
        assert scv(rng.exponential(size=100_000)) == pytest.approx(1.0, abs=0.05)


class TestAutocorrelation:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        fft_rho = autocorrelation(x, 5)
        centered = x - x.mean()
        var = centered @ centered
        direct = np.array(
            [centered[:-k] @ centered[k:] / var for k in range(1, 6)]
        )
        np.testing.assert_allclose(fft_rho, direct, atol=1e-10)

    def test_ar1_recovers_coefficient(self):
        rng = np.random.default_rng(2)
        phi = 0.7
        x = np.zeros(100_000)
        noise = rng.normal(size=x.size)
        for i in range(1, x.size):
            x[i] = phi * x[i - 1] + noise[i]
        rho = autocorrelation(x, 3)
        np.testing.assert_allclose(rho, [phi, phi**2, phi**3], atol=0.02)

    def test_invalid_lag(self):
        with pytest.raises(ValueError):
            autocorrelation(np.ones(10), 0)

    def test_constant_series(self):
        np.testing.assert_allclose(autocorrelation(np.full(10, 2.0), 3), np.zeros(3))


class TestIdc:
    def test_poisson_near_one(self):
        ts = poisson_map(100.0).sample(duration=200.0, seed=0)
        assert idc(np.diff(ts)) == pytest.approx(1.0, abs=0.35)

    def test_bursty_far_above_one(self):
        m = mmpp2(200.0, 2.0, 0.5, 0.5)
        ts = m.sample(duration=120.0, seed=0)
        assert idc(np.diff(ts)) > 10.0

    def test_counts_idc_poisson(self):
        ts = poisson_map(100.0).sample(duration=500.0, seed=1)
        assert counts_idc(ts, window=1.0) == pytest.approx(1.0, abs=0.25)

    def test_counts_idc_bursty(self):
        m = mmpp2(200.0, 2.0, 0.5, 0.5)
        ts = m.sample(duration=200.0, seed=1)
        assert counts_idc(ts, window=1.0) > 10.0

    def test_short_series_returns_one(self):
        assert idc(np.array([1.0, 2.0])) == 1.0

    def test_counts_idc_invalid_window(self):
        with pytest.raises(ValueError):
            counts_idc(np.array([1.0]), window=0.0)


@given(st.lists(st.floats(0.01, 10.0), min_size=5, max_size=50))
@settings(max_examples=40, deadline=None)
def test_idc_finite_and_autocorr_bounded(values):
    x = np.asarray(values)
    rho = autocorrelation(x, 4)
    assert np.all(np.abs(rho) <= 1.0 + 1e-9)
    assert np.isfinite(idc(x))
