"""Fast drive loop ≡ stepwise drive loop, bit-for-bit.

The speed pass gave :meth:`ServingEngine._drive` a fast path (batched
arrival runs, cached heap head, memoized service/cost) that is taken
whenever no stepwise-only feature is active — no checkpointing, no crash
hook, telemetry off. The stepwise loop remains the path for telemetry and
crash-safe runs, so the two must stay interchangeable: same trace, same
engine, same seed ⇒ identical :class:`ServingLog`, event trace included.

Also pins the hot-path micro-fixes: interned event kinds keep the engine's
same-seed determinism, and the per-batch service/cost memo is invalidated
on retrain.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.types import Decision
from repro.serverless.faults import FaultModel
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ColdStartModel
from repro.serving import ServingEngine, WarmPoolConfig
from repro.telemetry.metrics import MetricsRegistry, use_registry

pytestmark = pytest.mark.serving

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
OTHER = BatchConfig(memory_mb=4096.0, batch_size=16, timeout=0.02)


class FlipFlopChooser:
    def __init__(self):
        self.calls = 0

    def choose(self, history, slo):
        self.calls += 1
        config = OTHER if self.calls % 2 else CONFIG
        return Decision(config=config, decision_time=1e-3,
                        diagnostics={"predicted_p95": 0.08})


def trace(seed=5, n=1500, lam=250.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def build_engine(seed=123, faults=False):
    fault_model = FaultModel(failure_rate=0.2) if faults else None
    platform = ServerlessPlatform(
        cold_start=ColdStartModel(),
        faults=fault_model,
        concurrency_limit=4,
        seed=seed,
    )
    return ServingEngine(
        CONFIG,
        platform=platform,
        chooser=FlipFlopChooser(),
        pool=WarmPoolConfig(keep_alive_s=2.0, max_containers=4,
                            max_queued_batches=2),
        deploy_delay_s=0.25,
        decision_interval_s=0.5,
        min_history=16,
    )


def assert_logs_identical(a, b):
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(a.shed, b.shed)
    np.testing.assert_array_equal(a.failed, b.failed)
    np.testing.assert_array_equal(a.dispatch_times, b.dispatch_times)
    np.testing.assert_array_equal(a.start_times, b.start_times)
    np.testing.assert_array_equal(a.batch_sizes, b.batch_sizes)
    np.testing.assert_array_equal(a.batch_costs, b.batch_costs)
    np.testing.assert_array_equal(a.batch_cold, b.batch_cold)
    np.testing.assert_array_equal(a.batch_memory, b.batch_memory)
    np.testing.assert_array_equal(a.batch_retries, b.batch_retries)
    assert a.event_trace == b.event_trace
    assert a.n_events == b.n_events
    assert a.reconfigurations == b.reconfigurations
    assert len(a.decisions) == len(b.decisions)
    assert (a.cold_starts, a.warm_starts, a.expired_containers,
            a.evicted_containers, a.n_retries, a.n_failed) == (
        b.cold_starts, b.warm_starts, b.expired_containers,
        b.evicted_containers, b.n_retries, b.n_failed)


class TestFastEqualsStepwise:
    @pytest.mark.parametrize("faults", [False, True])
    def test_telemetry_run_matches_plain_run(self, faults):
        # Telemetry off → fast path; telemetry on → stepwise (timed) loop.
        ts = trace()
        fast = build_engine(seed=7, faults=faults).run(ts, record_trace=True)
        with use_registry(MetricsRegistry()):
            slow = build_engine(seed=7, faults=faults).run(
                ts, record_trace=True
            )
        assert_logs_identical(fast, slow)

    def test_checkpointed_run_matches_plain_run(self, tmp_path):
        # A checkpoint_path forces the stepwise loop (snapshot cadence).
        ts = trace(seed=9)
        fast = build_engine(seed=7, faults=True).run(ts, record_trace=True)
        slow = build_engine(seed=7, faults=True).run(
            ts, record_trace=True,
            checkpoint_path=tmp_path / "run.ckpt", checkpoint_every=128,
        )
        assert fast.n_events == slow.n_events
        np.testing.assert_array_equal(fast.latencies, slow.latencies)
        np.testing.assert_array_equal(fast.batch_costs, slow.batch_costs)
        assert fast.event_trace == slow.event_trace


class TestHotPathMicroFixes:
    @pytest.mark.parametrize("faults", [False, True])
    def test_same_seed_runs_identical(self, faults):
        # Interned event-kind constants and the payload restructure must
        # not perturb replay determinism.
        ts = trace(seed=11)
        a = build_engine(seed=3, faults=faults).run(ts, record_trace=True)
        b = build_engine(seed=3, faults=faults).run(ts, record_trace=True)
        assert_logs_identical(a, b)

    def test_retrain_invalidates_service_memo(self):
        # A retrain hook that changes the service profile must take effect
        # on the next dispatched batch — the per-run (memory, size) memo
        # cannot keep serving a stale pre-retrain service time.
        from repro.core.drift import WorkloadDriftDetector
        from repro.serving import DriftConfig

        class ScalingProfile:
            """Wraps the real profile; a retrain can rescale it live."""

            def __init__(self, inner):
                self.inner = inner
                self.scale = 1.0

            def service_time(self, memory_mb, size):
                return self.scale * self.inner.service_time(memory_mb, size)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        class StaticChooser:
            def choose(self, history, slo):
                return Decision(config=CONFIG, decision_time=1e-3)

        # Detector fit on calm traffic, live traffic 40x faster: one
        # drift trigger (huge cooldown), followed by one retrain.
        ts = np.cumsum(
            np.random.default_rng(14).exponential(1 / 2000.0, size=4000)
        )

        def run_with(make_hook):
            warmup = np.diff(np.cumsum(
                np.random.default_rng(10).exponential(1 / 50.0, size=3000)
            ))
            detector = WorkloadDriftDetector().fit(warmup, 32)
            platform = ServerlessPlatform()
            profile = ScalingProfile(platform.profile)
            platform.profile = profile
            return ServingEngine(
                CONFIG,
                platform=platform,
                chooser=StaticChooser(),
                drift=DriftConfig(detector=detector, window=32,
                                  check_every=32, cooldown_s=1e9,
                                  retrain_delay_s=0.2,
                                  on_retrain=make_hook(profile)),
                min_history=16,
            ).run(ts)

        def doubling(profile):
            def hook(recent):
                profile.scale = 2.0
            return hook

        def inert(profile):
            return lambda recent: None

        doubled = run_with(doubling)
        plain = run_with(inert)
        assert doubled.retrains == 1 and plain.retrains == 1
        # Were the memo kept across the retrain, the doubled profile would
        # never be re-read and the two runs would be identical.
        assert not np.array_equal(doubled.latencies, plain.latencies)
