"""Determinism regression: the engine is a seeded, replayable system.

Two runs with identical inputs — same trace, same platform seed, same
chooser, same pool — must produce identical event traces and identical
:class:`ServingLog` contents, including under fault injection, cold
starts, finite keep-alive, bounded queues, and live reconfigurations.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.types import Decision
from repro.serverless.faults import FaultModel
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ColdStartModel
from repro.serving import ServingEngine, ServingLog, WarmPoolConfig

pytestmark = pytest.mark.serving

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
OTHER = BatchConfig(memory_mb=4096.0, batch_size=16, timeout=0.02)


class FlipFlopChooser:
    """Alternates between two configs so reconfigurations exercise the
    deploy-lag and generation-superseding paths on every run."""

    def __init__(self):
        self.calls = 0

    def choose(self, history, slo):
        self.calls += 1
        config = OTHER if self.calls % 2 else CONFIG
        return Decision(config=config, decision_time=1e-3,
                        diagnostics={"predicted_p95": 0.08})


def trace(seed=5, n=1200, lam=250.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def build_engine(seed=123, faults=False):
    fault_model = FaultModel(failure_rate=0.2) if faults else None
    platform = ServerlessPlatform(
        cold_start=ColdStartModel(),
        faults=fault_model,
        concurrency_limit=4,
        seed=seed,
    )
    return ServingEngine(
        CONFIG,
        platform=platform,
        chooser=FlipFlopChooser(),
        pool=WarmPoolConfig(keep_alive_s=2.0, max_containers=4,
                            max_queued_batches=2),
        deploy_delay_s=0.25,
        decision_interval_s=0.5,
        min_history=16,
    )


def assert_logs_identical(a: ServingLog, b: ServingLog):
    np.testing.assert_array_equal(a.arrival_times, b.arrival_times)
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(a.shed, b.shed)
    np.testing.assert_array_equal(a.dispatch_times, b.dispatch_times)
    np.testing.assert_array_equal(a.start_times, b.start_times)
    np.testing.assert_array_equal(a.failed, b.failed)
    np.testing.assert_array_equal(a.batch_sizes, b.batch_sizes)
    np.testing.assert_array_equal(a.batch_costs, b.batch_costs)
    np.testing.assert_array_equal(a.batch_memory, b.batch_memory)
    np.testing.assert_array_equal(a.batch_cold, b.batch_cold)
    np.testing.assert_array_equal(a.batch_retries, b.batch_retries)
    assert a.cold_starts == b.cold_starts
    assert a.warm_starts == b.warm_starts
    assert a.expired_containers == b.expired_containers
    assert a.evicted_containers == b.evicted_containers
    assert a.n_retries == b.n_retries
    assert a.n_failed == b.n_failed
    assert a.reconfigurations == b.reconfigurations
    assert len(a.decisions) == len(b.decisions)
    for da, db in zip(a.decisions, b.decisions):
        assert da.time == db.time
        assert da.reason == db.reason
        assert da.config == db.config
        assert da.applied_at == db.applied_at


class TestDeterminism:
    def test_same_inputs_same_event_trace(self):
        ts = trace()
        a = build_engine().run(ts, record_trace=True)
        b = build_engine().run(ts, record_trace=True)
        assert a.event_trace is not None
        assert len(a.event_trace) == len(b.event_trace)
        for ea, eb in zip(a.event_trace, b.event_trace):
            assert ea == eb
        assert_logs_identical(a, b)

    def test_same_seed_same_faults(self):
        ts = trace()
        a = build_engine(seed=7, faults=True).run(ts, record_trace=True)
        b = build_engine(seed=7, faults=True).run(ts, record_trace=True)
        # Faults actually fired, and identically so.
        assert a.n_retries > 0
        assert a.event_trace == b.event_trace
        assert_logs_identical(a, b)

    def test_different_seed_different_faults(self):
        ts = trace()
        a = build_engine(seed=7, faults=True).run(ts)
        b = build_engine(seed=8, faults=True).run(ts)
        assert not np.array_equal(a.batch_retries, b.batch_retries)

    def test_reuse_of_one_engine_is_fresh_per_run(self):
        # run() must not leak state between invocations on the same engine.
        ts = trace()
        engine = build_engine()
        a = engine.run(ts, record_trace=True)
        b = engine.run(ts, record_trace=True)
        assert a.event_trace == b.event_trace
        assert_logs_identical(a, b)

    def test_trace_is_opt_in(self):
        log = build_engine().run(trace(n=200))
        assert log.event_trace is None

    def test_trace_covers_all_event_kinds(self):
        ts = trace()
        log = build_engine().run(ts, record_trace=True)
        kinds = {e[0] for e in log.event_trace}
        assert {"arrival", "start", "completion", "decision",
                "reconfigure"} <= kinds
        # Events are emitted in non-decreasing simulated time.
        times = [e[1] for e in log.event_trace]
        assert all(t1 <= t2 for t1, t2 in zip(times, times[1:]))
