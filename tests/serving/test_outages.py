"""Correlated infrastructure outages + the graceful-degradation stack.

PR 10's fault layer (:mod:`repro.serverless.outages`) makes the platform
fail in correlated ways — outage windows deny cold starts, containers
crash mid-batch, stragglers stretch service times — and the degradation
stack (:mod:`repro.serving.degrade`) answers: cold-start retry with
capped backoff, percentile-delay request hedging, fleet brownout
(priority shedding), and queue failover to compatible endpoints.

The anchored contracts, in test order:

* the fault models and the JSON schema validate and sample
  deterministically;
* the warm pool denies provisioning (only) inside windows, in both
  implementations, and ``kill()`` frees capacity immediately — the
  fleet-shared budget included;
* with every feature disabled the engine and the fleet are
  **bit-identical** to a build that never heard of this PR;
* every degradation mechanism is exercised, deterministic, crash-safe
  (chaos drill with the full stack on), and refuses to restore under a
  different outage model;
* the pinned degradation eval: under a mid-run outage the defended
  fleet keeps at least twice the undefended in-window goodput at
  bounded extra cost, and the premium tier stays ahead of the blend.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.types import Decision
from repro.serverless.faults import FaultModel, RetryPolicy
from repro.serverless.outages import (
    CrashHazard,
    OutageModel,
    OutageWindow,
    StragglerModel,
    sample_outage_windows,
)
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ColdStartModel
from repro.serving import (
    BrownoutConfig,
    DegradeConfig,
    EndpointSpec,
    FailoverConfig,
    FleetEngine,
    GuardrailConfig,
    HedgeConfig,
    OutageConfigError,
    ServingEngine,
    WarmPoolConfig,
    assert_serving_logs_equal,
    load_outage_config,
    run_with_crashes,
    validate_fleet_degrade,
    validate_outage_config,
)
from repro.serving.checkpoint import CheckpointError
from repro.serving.fleet import FleetBudget
from repro.serving.pool import ReferenceWarmPool, WarmPool
from repro.telemetry import MetricsRegistry, use_registry

pytestmark = [pytest.mark.serving, pytest.mark.outage]

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)

#: The full-stack engine scenario most tests share: a mid-run outage
#: window, elevated in-window crash hazard, 20% stragglers, and the
#: complete per-engine degradation stack on a tightly capped pool.
OUTAGES = OutageModel(
    windows=(OutageWindow(10.0, 15.0),),
    crash=CrashHazard(rate=0.01, outage_rate=0.1),
    straggler=StragglerModel(rate=0.2, slowdown=3.0),
    seed=3,
)
DEGRADE = DegradeConfig(
    backoff=RetryPolicy(max_attempts=4, base_backoff_s=0.2,
                        max_total_delay_s=3.0),
    hedge=HedgeConfig(percentile=90.0, multiplier=1.5),
)


def uniform_trace(seed=0, n=400, horizon=30.0):
    rng = np.random.default_rng(seed)
    return np.sort(rng.uniform(0, horizon, n))


def build_engine(outages=OUTAGES, degrade=DEGRADE, **kwargs):
    kwargs.setdefault(
        "pool", WarmPoolConfig(max_containers=4, max_queued_batches=8)
    )
    return ServingEngine(CONFIG, outages=outages, degrade=degrade, **kwargs)


# ---------------------------------------------------------------- the models
class TestOutageModel:
    def test_window_validation(self):
        with pytest.raises(ValueError, match="start"):
            OutageWindow(-1.0, 2.0)
        with pytest.raises(ValueError, match="end"):
            OutageWindow(3.0, 3.0)
        with pytest.raises(ValueError, match="non-overlapping"):
            OutageModel(windows=(OutageWindow(0.0, 5.0),
                                 OutageWindow(4.0, 6.0)))

    def test_active_is_closed_open(self):
        m = OutageModel(windows=(OutageWindow(2.0, 4.0),
                                 OutageWindow(8.0, 9.0)))
        assert not m.active(1.9)
        assert m.active(2.0) and m.active(3.99)
        assert not m.active(4.0)
        assert m.active(8.5) and not m.active(9.0)

    def test_crash_probability_switches_inside_windows(self):
        m = OutageModel(windows=(OutageWindow(2.0, 4.0),),
                        crash=CrashHazard(rate=0.01, outage_rate=0.2))
        assert m.crash_probability(1.0) == 0.01
        assert m.crash_probability(3.0) == 0.2
        # Without an explicit outage_rate the base rate applies everywhere.
        m = OutageModel(windows=(OutageWindow(2.0, 4.0),),
                        crash=CrashHazard(rate=0.05))
        assert m.crash_probability(3.0) == 0.05
        assert OutageModel().crash_probability(3.0) == 0.0

    def test_straggler_factor_is_pure_and_seeded(self):
        m = OutageModel(straggler=StragglerModel(rate=0.3, slowdown=4.0),
                        seed=7)
        factors = [m.straggler_factor(cid) for cid in range(200)]
        assert factors == [m.straggler_factor(cid) for cid in range(200)]
        assert set(factors) == {1.0, 4.0}
        # A different seed re-rolls the per-container draws.
        other = OutageModel(straggler=StragglerModel(rate=0.3, slowdown=4.0),
                            seed=8)
        assert factors != [other.straggler_factor(cid) for cid in range(200)]
        # Degenerate rates pin both ends.
        never = OutageModel(straggler=StragglerModel(rate=0.0, slowdown=4.0))
        always = OutageModel(straggler=StragglerModel(rate=1.0, slowdown=4.0))
        assert never.straggler_factor(0) == 1.0
        assert always.straggler_factor(0) == 4.0

    def test_disabled_detection(self):
        assert not OutageModel().enabled
        assert not OutageModel(crash=CrashHazard()).enabled
        assert not OutageModel(straggler=StragglerModel(rate=0.0)).enabled
        assert OutageModel(windows=(OutageWindow(0.0, 1.0),)).enabled
        assert OutageModel(crash=CrashHazard(rate=0.1)).enabled
        assert OutageModel(straggler=StragglerModel(rate=0.1)).enabled

    def test_sampled_windows_are_seeded_and_clipped(self):
        a = sample_outage_windows(seed=4, horizon_s=300.0, mean_up_s=40.0,
                                  mean_down_s=10.0)
        b = sample_outage_windows(seed=4, horizon_s=300.0, mean_up_s=40.0,
                                  mean_down_s=10.0)
        assert a == b and a
        assert a != sample_outage_windows(seed=5, horizon_s=300.0,
                                          mean_up_s=40.0, mean_down_s=10.0)
        assert all(w.end <= 300.0 for w in a)
        OutageModel(windows=a)  # sorted and non-overlapping by construction
        with pytest.raises(ValueError, match="horizon_s"):
            sample_outage_windows(seed=0, horizon_s=0.0, mean_up_s=1.0,
                                  mean_down_s=1.0)
        with pytest.raises(ValueError, match="mean_up_s"):
            sample_outage_windows(seed=0, horizon_s=1.0, mean_up_s=0.0,
                                  mean_down_s=1.0)


# ---------------------------------------------------------------- the schema
class TestOutageSchema:
    DOC = {
        "windows": [{"start": 20.0, "end": 35.0}],
        "crash": {"rate": 0.002, "outage_rate": 0.02},
        "straggler": {"rate": 0.1, "slowdown": 3.0},
        "seed": 7,
        "degrade": {
            "backoff": {"max_attempts": 4, "base_backoff_s": 0.1,
                        "max_total_delay_s": 5.0},
            "hedge": {"percentile": 95.0, "multiplier": 1.5},
        },
    }

    def test_full_document_round_trips(self):
        model, degrade = validate_outage_config(self.DOC)
        assert model.windows == (OutageWindow(20.0, 35.0),)
        assert model.crash == CrashHazard(rate=0.002, outage_rate=0.02)
        assert model.straggler == StragglerModel(rate=0.1, slowdown=3.0)
        assert model.seed == 7
        assert degrade.backoff.max_attempts == 4
        assert degrade.backoff.max_total_delay_s == 5.0
        assert degrade.hedge.percentile == 95.0
        assert degrade.hedge.multiplier == 1.5

    def test_windows_and_random_are_exclusive(self):
        with pytest.raises(OutageConfigError, match="mutually exclusive"):
            validate_outage_config({
                "windows": [{"start": 0.0, "end": 1.0}],
                "random": {"horizon_s": 10.0},
            })

    def test_random_windows_resolve_through_the_seed(self):
        doc = {"random": {"horizon_s": 200.0, "mean_up_s": 30.0,
                          "mean_down_s": 5.0}, "seed": 9}
        model, _ = validate_outage_config(doc)
        assert model.windows == sample_outage_windows(
            seed=9, horizon_s=200.0, mean_up_s=30.0, mean_down_s=5.0)

    def test_errors_are_path_qualified(self):
        with pytest.raises(OutageConfigError, match=r"outages: unknown keys"):
            validate_outage_config({"windwos": []})
        with pytest.raises(OutageConfigError,
                           match=r"outages\.windows\[0\]\.end"):
            validate_outage_config({"windows": [{"start": 5.0, "end": 5.0}]})
        with pytest.raises(OutageConfigError, match=r"outages\.crash\.rate"):
            validate_outage_config({"crash": {"rate": 2.0}})
        with pytest.raises(OutageConfigError,
                           match=r"ep\.outages\.straggler\.slowdown"):
            validate_outage_config({"straggler": {"slowdown": 0.5}},
                                   path="ep.outages")

    def test_empty_degrade_normalizes_to_none(self):
        model, degrade = validate_outage_config(
            {"windows": [{"start": 0.0, "end": 1.0}], "degrade": {}})
        assert degrade is None and model.enabled

    def test_loader_wraps_io_and_json_errors(self, tmp_path):
        with pytest.raises(OutageConfigError, match="cannot read"):
            load_outage_config(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(OutageConfigError, match="not valid JSON"):
            load_outage_config(bad)
        good = tmp_path / "good.json"
        good.write_text('{"windows": [{"start": 1.0, "end": 2.0}]}')
        model, degrade = load_outage_config(good)
        assert model.windows == (OutageWindow(1.0, 2.0),)
        assert degrade is None

    def test_fleet_degrade_schema(self):
        brownout, failover = validate_fleet_degrade(
            {"brownout": {"max_total_queued": 6},
             "failover": {"min_queue": 2}})
        assert brownout == BrownoutConfig(max_total_queued=6)
        assert failover == FailoverConfig(min_queue=2)
        assert validate_fleet_degrade({}) == (None, None)
        with pytest.raises(OutageConfigError, match="max_total_queued"):
            validate_fleet_degrade({"brownout": {}})
        with pytest.raises(OutageConfigError,
                           match=r"degrade\.failover\.min_queue"):
            validate_fleet_degrade({"failover": {"min_queue": 0}})


# ------------------------------------------------------------------ the pool
WINDOWED = OutageModel(windows=(OutageWindow(5.0, 10.0),))


@pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
class TestPoolOutages:
    def test_windows_deny_cold_starts_only(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(), outage=WINDOWED)
        lease = pool.acquire(0.0, 2048.0)  # before the window: cold start
        assert lease is not None and lease.cold
        pool.release(lease.container_id, 1.0)
        # Inside the window warm reuse still works...
        warm = pool.acquire(6.0, 2048.0)
        assert warm is not None and not warm.cold
        # ...but a fresh cold start is denied, and counted.
        assert pool.acquire(7.0, 2048.0) is None
        assert pool.stats.outage_denied == 1
        # The window closing restores provisioning.
        assert pool.acquire(10.0, 2048.0) is not None

    def test_prewarm_is_denied_inside_windows(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(), outage=WINDOWED)
        assert pool.prewarm(6.0, 2048.0, 3) == 0
        assert pool.stats.outage_denied == 1
        assert pool.prewarm(11.0, 2048.0, 3) == 3

    def test_windowless_model_is_normalized_away(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(),
                        outage=OutageModel(crash=CrashHazard(rate=0.5)))
        assert pool.outage is None

    def test_kill_frees_capacity_immediately(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(max_containers=1))
        lease = pool.acquire(0.0, 2048.0)
        assert pool.acquire(1.0, 2048.0) is None  # at cap, container busy
        pool.kill(lease.container_id)
        assert pool.stats.crashed == 1
        assert pool.acquire(1.0, 2048.0) is not None  # slot is free now
        # Killing an unknown id is a no-op, not a crash.
        pool.kill(999)
        assert pool.stats.crashed == 1

    def test_kill_frees_a_shared_fleet_budget_slot(self, pool_cls):
        from repro.serving.fleet import BudgetedWarmPool

        budget = FleetBudget(max_containers=1)
        a = BudgetedWarmPool(WarmPoolConfig(), None, budget)
        b = BudgetedWarmPool(WarmPoolConfig(), None, budget)
        lease = a.acquire(0.0, 2048.0)
        assert b.acquire(1.0, 2048.0) is None  # fleet-wide cap, all busy
        a.kill(lease.container_id)
        assert b.acquire(1.0, 2048.0) is not None

    def test_budgeted_pool_honours_outage_windows(self, pool_cls):
        from repro.serving.fleet import BudgetedWarmPool

        pool = BudgetedWarmPool(WarmPoolConfig(), None, FleetBudget(4),
                                outage=WINDOWED)
        assert pool.acquire(6.0, 2048.0) is None
        assert pool.stats.outage_denied == 1


# ---------------------------------------------------------------- the engine
class TestEngineDegrade:
    def test_disabled_configs_are_bit_identical(self):
        ts = uniform_trace()
        base = ServingEngine(CONFIG).run(ts, record_trace=True)
        off = ServingEngine(CONFIG, outages=OutageModel(),
                            degrade=DegradeConfig()).run(ts,
                                                         record_trace=True)
        assert_serving_logs_equal(base, off)
        assert off.hedged is None and off.failed_over is None
        assert off.outage_denied == 0 and off.crashed_containers == 0

    def test_full_stack_exercises_every_mechanism(self):
        ts = uniform_trace()
        log = build_engine().run(ts)
        assert log.outage_denied > 0
        assert log.crashed_containers > 0
        assert log.crash_requeued > 0
        assert log.straggler_batches > 0
        assert log.cold_retries > 0
        assert log.cold_retry_exhausted > 0
        assert log.hedges > 0 and log.hedge_wins > 0
        assert log.hedge_cost > 0.0
        assert log.hedged is not None and log.hedged.sum() > 0

    def test_full_stack_is_deterministic(self):
        ts = uniform_trace()
        a = build_engine().run(ts, record_trace=True)
        b = build_engine().run(ts, record_trace=True)
        assert_serving_logs_equal(a, b)

    def test_no_request_is_lost_to_a_crash(self):
        # Conservation: a crashed batch's requests re-enter the queue and
        # every non-shed request eventually completes (served or failed).
        ts = uniform_trace(seed=1)
        log = build_engine(degrade=None).run(ts)
        assert log.crashed_containers > 0
        assert log.crash_requeued > 0
        assert np.all(np.isfinite(log.latencies) | log.shed)
        # The kill reached the pool's accounting.
        assert log.crashed_containers <= log.cold_starts

    def test_windows_only_model_denies_without_crashing(self):
        # Short keep-alive: warm capacity expires into the window, so the
        # engine genuinely needs cold starts while provisioning is denied.
        om = OutageModel(windows=(OutageWindow(10.0, 15.0),))
        log = build_engine(
            outages=om, degrade=None,
            pool=WarmPoolConfig(max_containers=4, max_queued_batches=8,
                                keep_alive_s=0.2),
        ).run(uniform_trace())
        assert log.outage_denied > 0
        assert log.crashed_containers == 0 and log.straggler_batches == 0
        assert log.hedged is None

    def test_straggler_slowdown_shows_up_in_latencies(self):
        om_straggle = OutageModel(
            straggler=StragglerModel(rate=1.0, slowdown=5.0), seed=1)
        ts = uniform_trace()
        slow = build_engine(outages=om_straggle, degrade=None).run(ts)
        clean = build_engine(outages=None, degrade=None).run(ts)
        assert slow.straggler_batches == len(slow.batch_sizes)
        assert np.nanmean(slow.latencies) > np.nanmean(clean.latencies)

    def test_backoff_budget_truncates_the_retry_schedule(self):
        om = OutageModel(windows=(OutageWindow(10.0, 15.0),))
        ts = uniform_trace()

        def run(budget):
            return build_engine(
                outages=om,
                degrade=DegradeConfig(backoff=RetryPolicy(
                    max_attempts=6, base_backoff_s=0.5, jitter=0.0,
                    max_total_delay_s=budget)),
                pool=WarmPoolConfig(max_containers=4, max_queued_batches=8,
                                    keep_alive_s=0.2),
            ).run(ts)

        roomy = run(None)
        tight = run(0.6)  # only the first 0.5s retry fits the budget
        assert roomy.cold_retries > 0
        assert tight.cold_retries > 0
        # The tight budget gives up earlier: more batches exhaust their
        # schedule and fall back to the queue.
        assert tight.cold_retry_exhausted > roomy.cold_retry_exhausted

    def test_generation_mode_refuses_the_fault_layer(self):
        from repro.serving.config import GenerationConfig

        with pytest.raises(ValueError, match="generation"):
            ServingEngine(CONFIG, generation=GenerationConfig(),
                          outages=OUTAGES)
        with pytest.raises(ValueError, match="generation"):
            ServingEngine(CONFIG, generation=GenerationConfig(),
                          degrade=DEGRADE)

    def test_outage_telemetry_is_namespaced(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            build_engine().run(uniform_trace())
        counters = {r["name"]: r["value"] for r in registry.records()
                    if r.get("type") == "counter"}
        assert counters["serving.outage.crashes"] > 0
        assert counters["serving.outage.crash_requeued"] > 0
        assert counters["serving.outage.straggler_batches"] > 0
        assert counters["serving.degrade.cold_retries"] > 0
        assert counters["serving.degrade.hedges"] > 0

    def test_chaos_restore_with_the_stack_on(self, tmp_path):
        ts = uniform_trace()
        clean = build_engine().run(ts, record_trace=True)
        log, kills = run_with_crashes(
            build_engine, ts, tmp_path / "outage.ckpt",
            n_crashes=4, seed=11, record_trace=True,
        )
        assert kills, "the drill must actually kill the engine"
        assert_serving_logs_equal(clean, log)

    def test_restore_refuses_a_different_outage_model(self, tmp_path):
        ts = uniform_trace()
        path = tmp_path / "fp.ckpt"
        build_engine().run(ts, checkpoint_path=path)
        other = OutageModel(
            windows=OUTAGES.windows, crash=OUTAGES.crash,
            straggler=OUTAGES.straggler, seed=OUTAGES.seed + 1,
        )
        with pytest.raises(CheckpointError, match="outages"):
            build_engine(outages=other).restore(path)
        with pytest.raises(CheckpointError, match="degrade"):
            build_engine(degrade=DegradeConfig(
                backoff=DEGRADE.backoff)).restore(path)


# ----------------------------------------------------------------- the fleet
def fleet_traces(seed=2, horizon=10.0, n_gold=3000, n_bulk=2000):
    rng = np.random.default_rng(seed)
    return {"gold": np.sort(rng.uniform(0, horizon, n_gold)),
            "bulk": np.sort(rng.uniform(0, horizon, n_bulk))}


def tiered_endpoints(queue_cap=20, containers=1, gold_outages=None,
                     gold_degrade=None):
    return [
        EndpointSpec(
            name="gold", config=BatchConfig(2048.0, 4, 0.01), slo=0.2,
            priority=1,
            pool=WarmPoolConfig(max_containers=containers,
                                max_queued_batches=queue_cap),
            outages=gold_outages, degrade=gold_degrade,
        ),
        EndpointSpec(
            name="bulk", config=BatchConfig(2048.0, 8, 0.05), slo=1.0,
            priority=0,
            pool=WarmPoolConfig(max_containers=containers,
                                max_queued_batches=queue_cap),
        ),
    ]


class ScanFleet(FleetEngine):
    """The linear-scan drive loop — the fleet's executable spec."""

    _scan_lanes = True


@pytest.mark.fleet
class TestFleetDegrade:
    def test_failover_drains_a_starved_lane(self):
        traffic = fleet_traces()
        kw = dict(brownout=BrownoutConfig(max_total_queued=10),
                  failover=FailoverConfig(min_queue=2))
        log = FleetEngine(tiered_endpoints(), **kw).run(traffic)
        g = log["gold"]
        assert g.failover_batches > 0
        assert g.failed_over is not None and g.failed_over.sum() > 0
        # Determinism, and the heap drive loop matches the scan spec.
        again = FleetEngine(tiered_endpoints(), **kw).run(traffic)
        scan = ScanFleet(tiered_endpoints(), **kw).run(traffic)
        for name in ("gold", "bulk"):
            assert_serving_logs_equal(log[name], again[name])
            assert_serving_logs_equal(log[name], scan[name])

    def test_brownout_sheds_the_low_priority_tier_first(self):
        # Gold is lightly loaded (its queue stays clear); bulk is swamped.
        # Every brownout victim must come from the priority-0 lane.
        rng = np.random.default_rng(3)
        traffic = {"gold": np.sort(rng.uniform(0, 10.0, 100)),
                   "bulk": np.sort(rng.uniform(0, 10.0, 8000))}
        kw = dict(brownout=BrownoutConfig(max_total_queued=4))
        log = FleetEngine(tiered_endpoints(queue_cap=50), **kw).run(traffic)
        assert log["bulk"].brownout_shed > 0
        assert log["gold"].brownout_shed == 0
        scan = ScanFleet(tiered_endpoints(queue_cap=50), **kw).run(traffic)
        for name in ("gold", "bulk"):
            assert_serving_logs_equal(log[name], scan[name])

    def test_single_lane_fleet_degradation_is_inert(self):
        # One endpoint: failover has no donor, a roomy brownout never
        # trips — the data plane must match a fleet without the stack.
        ts = {"gold": uniform_trace(seed=4, n=600, horizon=10.0)}
        spec = [tiered_endpoints(queue_cap=50)[0]]
        plain = FleetEngine(spec).run(ts)["gold"]
        armed = FleetEngine(
            [tiered_endpoints(queue_cap=50)[0]],
            brownout=BrownoutConfig(max_total_queued=10_000),
            failover=FailoverConfig(min_queue=1),
        ).run(ts)["gold"]
        # The failover mask exists (the feature is armed) but never fires,
        # and the data plane is bit-identical to the unarmed fleet.
        assert armed.failed_over is not None and not armed.failed_over.any()
        assert armed.brownout_shed == 0 and armed.failover_batches == 0
        for name in ("latencies", "shed", "failed", "dispatch_times",
                     "start_times", "batch_sizes", "batch_costs",
                     "batch_cold"):
            np.testing.assert_array_equal(getattr(plain, name),
                                          getattr(armed, name))

    def test_budgeted_lane_still_honours_outage_windows(self):
        # The shared-budget pool subclass must keep the outage gate: with
        # a fleet-wide budget set, the outage-struck lane is still denied.
        om = OutageModel(windows=(OutageWindow(2.0, 8.0),))
        traffic = fleet_traces(n_gold=800, n_bulk=200)
        specs = tiered_endpoints(gold_outages=om)
        specs = [
            EndpointSpec(**{**spec.__dict__,
                            "pool": WarmPoolConfig(max_containers=None,
                                                   max_queued_batches=20,
                                                   keep_alive_s=0.5)})
            for spec in specs
        ]
        log = FleetEngine(specs, max_containers=4).run(traffic)
        assert log["gold"].outage_denied > 0
        assert log["bulk"].outage_denied == 0


# --------------------------------------------------- the pinned degradation eval
def in_window_goodput(log, window):
    """Fraction of the window's arrivals served inside the endpoint SLO."""
    arrived = ((log.arrival_times >= window.start)
               & (log.arrival_times < window.end))
    ok = np.isfinite(log.latencies) & (log.latencies <= log.slo) & ~log.failed
    return float((arrived & ok).sum() / max(1, arrived.sum()))


def attainment(log):
    ok = np.isfinite(log.latencies) & (log.latencies <= log.slo) & ~log.failed
    return float(ok.sum() / log.n_requests)


@pytest.mark.fleet
class TestDegradationEval:
    """The PR's pinned claim: defended >= 2x undefended in-window goodput,
    at bounded extra cost, with the premium tier ahead of the blend.

    The drill: the premium "gold" lane is outage-struck mid-run — a 4s
    window denying cold starts with an elevated in-window crash hazard
    and 15% stragglers — while the same-tier "bulk" lane idles in an
    unaffected zone. Undefended, gold's crashed containers cannot be
    replaced, its queue saturates, and it sheds. Defended, denied cold
    starts back off briefly and re-enter the queue, failover drains that
    queue onto bulk's healthy pool, and hedging covers the stragglers.
    Measured at these seeds: in-window goodput 0.98 vs 0.07 (>13x) for
    about 1.35x the blended bill.
    """

    WINDOW = OutageWindow(4.0, 8.0)
    OM = OutageModel(
        windows=(WINDOW,),
        crash=CrashHazard(rate=0.005, outage_rate=0.08),
        straggler=StragglerModel(rate=0.15, slowdown=3.0),
        seed=5,
    )
    DC = DegradeConfig(
        backoff=RetryPolicy(max_attempts=2, base_backoff_s=0.05,
                            max_total_delay_s=0.5),
        hedge=HedgeConfig(percentile=90.0, multiplier=1.5),
    )

    def endpoints(self, defended):
        pool = WarmPoolConfig(max_containers=3, max_queued_batches=12,
                              keep_alive_s=1.0)
        return [
            EndpointSpec(
                name="gold", config=BatchConfig(2048.0, 4, 0.01),
                slo=0.25, priority=1, pool=pool,
                platform=ServerlessPlatform(seed=17,
                                            cold_start=ColdStartModel()),
                outages=self.OM, degrade=self.DC if defended else None,
            ),
            EndpointSpec(
                name="bulk", config=BatchConfig(2048.0, 8, 0.05),
                slo=0.5, priority=0, pool=pool,
                platform=ServerlessPlatform(seed=18,
                                            cold_start=ColdStartModel()),
            ),
        ]

    def run_fleet(self, defended):
        traffic = fleet_traces(seed=6, horizon=12.0, n_gold=1200,
                               n_bulk=150)
        engine = FleetEngine(
            self.endpoints(defended),
            brownout=BrownoutConfig(max_total_queued=10) if defended else None,
            failover=FailoverConfig(min_queue=1) if defended else None,
        )
        return engine.run(traffic)

    def test_defended_fleet_beats_the_undefended_one(self):
        defended = self.run_fleet(True)
        undefended = self.run_fleet(False)
        d_gold, u_gold = defended["gold"], undefended["gold"]

        # The stack actually engaged during the drill.
        assert d_gold.cold_retries > 0
        assert d_gold.hedges > 0
        assert (d_gold.failover_batches > 0
                or defended["bulk"].failover_batches > 0)

        # Pinned headline: >= 2x in-window goodput for the premium tier.
        d_good = in_window_goodput(d_gold, self.WINDOW)
        u_good = in_window_goodput(u_gold, self.WINDOW)
        assert d_good >= 2.0 * u_good, (d_good, u_good)

        # Bounded economics: hedging + retries at most double the bill.
        d_cost = sum(defended[n].total_cost for n in ("gold", "bulk"))
        u_cost = sum(undefended[n].total_cost for n in ("gold", "bulk"))
        assert d_cost <= 2.0 * u_cost, (d_cost, u_cost)

        # The premium tier ends above the undefended fleet's blended
        # attainment — degradation is graceful, not just redistributed.
        blended = (
            sum(attainment(undefended[n]) * undefended[n].n_requests
                for n in ("gold", "bulk"))
            / sum(undefended[n].n_requests for n in ("gold", "bulk"))
        )
        assert attainment(d_gold) > blended, (attainment(d_gold), blended)

    def test_the_eval_is_deterministic(self):
        a = self.run_fleet(True)
        b = self.run_fleet(True)
        for name in ("gold", "bulk"):
            assert_serving_logs_equal(a[name], b[name])


# ------------------------------------------- guardrail under infrastructure faults
GOOD = BatchConfig(memory_mb=2048.0, batch_size=1, timeout=0.0)
BAD = BatchConfig(memory_mb=2048.0, batch_size=64, timeout=0.5)


class RecoveringChooser:
    """Serves BAD until the breaker trips, then GOOD: the half-open probe
    should succeed and the breaker close again."""

    def __init__(self):
        self.calls = 0

    def choose(self, history, slo):
        self.calls += 1
        return Decision(config=BAD if self.calls <= 1 else GOOD,
                        decision_time=0.0)


class TestGuardrailUnderFaults:
    """PR 10 satellite: the breaker's half-open probe must re-admit the
    controller while request faults are active and while an outage window
    is (or was) open — infrastructure trouble must not wedge it OPEN."""

    def trace(self, n=3000, lam=250.0):
        rng = np.random.default_rng(5)
        return np.cumsum(rng.exponential(1.0 / lam, size=n))

    def test_half_open_probe_restores_under_request_faults(self):
        platform = ServerlessPlatform(
            seed=9, faults=FaultModel(failure_rate=0.05))
        log = ServingEngine(
            BAD, platform=platform, chooser=RecoveringChooser(), slo=0.1,
            decision_interval_s=1.0,
            guardrail=GuardrailConfig(window=32, k=2, cooldown_s=2.0,
                                      probe_windows=2),
        ).run(self.trace())
        assert log.n_retries > 0  # the fault layer really was active
        assert log.guardrail_trips >= 1
        assert log.guardrail_restores >= 1
        assert log.guardrail_state == "closed"

    def test_half_open_probe_restores_across_an_outage_window(self):
        om = OutageModel(windows=(OutageWindow(2.0, 5.0),))
        log = ServingEngine(
            BAD, chooser=RecoveringChooser(), slo=0.1,
            decision_interval_s=1.0,
            pool=WarmPoolConfig(max_containers=4, max_queued_batches=8),
            outages=om,
            guardrail=GuardrailConfig(window=32, k=2, cooldown_s=2.0,
                                      probe_windows=2),
        ).run(self.trace())
        assert log.outage_denied > 0  # the window really did bite
        assert log.guardrail_trips >= 1
        assert log.guardrail_restores >= 1
        assert log.guardrail_state == "closed"
