"""Grouped-config engine API (PR 6) and its deprecation shim.

The regroup of ``ServingEngine`` kwargs into :class:`DriftConfig` /
:class:`PredictionDriftConfig` must be a pure API change: the flat
pre-PR-6 spelling still works (with exactly one ``DeprecationWarning``)
and produces **bit-identical** runs.
"""

import warnings

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.drift import WorkloadDriftDetector
from repro.serverless.platform import ServerlessPlatform
from repro.serving import DriftConfig, PredictionDriftConfig, ServingEngine

pytestmark = pytest.mark.serving

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)


def poisson(lam, n, seed):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def fitted_detector(lam=50.0, window=32):
    warmup = np.diff(poisson(lam, 3000, seed=10))
    return WorkloadDriftDetector().fit(warmup, window)


class TestGroupedFlatEquivalence:
    def test_flat_kwargs_run_bit_identical_to_grouped(self):
        detector = fitted_detector()
        ts = poisson(500.0, 2000, seed=1)

        grouped = ServingEngine(
            CONFIG, platform=ServerlessPlatform(seed=5),
            drift=DriftConfig(detector=detector, window=32, check_every=16,
                              cooldown_s=5.0),
            prediction=PredictionDriftConfig(baseline_error=0.1,
                                             tolerance=2.0, min_samples=32),
        ).run(ts, record_trace=True)

        with pytest.warns(DeprecationWarning):
            engine = ServingEngine(
                CONFIG, platform=ServerlessPlatform(seed=5),
                drift_detector=detector, drift_window=32,
                drift_check_every=16, drift_cooldown_s=5.0,
                prediction_baseline_error=0.1, prediction_tolerance=2.0,
                prediction_min_samples=32,
            )
        flat = engine.run(ts, record_trace=True)

        np.testing.assert_array_equal(flat.latencies, grouped.latencies)
        np.testing.assert_array_equal(flat.batch_costs, grouped.batch_costs)
        assert flat.event_trace == grouped.event_trace
        assert len(flat.decisions) == len(grouped.decisions)

    def test_exactly_one_warning_for_many_flat_kwargs(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ServingEngine(
                CONFIG,
                drift_window=64, drift_check_every=32, retrain_delay_s=2.0,
                prediction_baseline_error=0.1,
            )
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        # The single warning names every flat kwarg that was used.
        for name in ("drift_window", "drift_check_every",
                     "retrain_delay_s", "prediction_baseline_error"):
            assert name in message

    def test_grouped_spelling_warns_nothing(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ServingEngine(CONFIG, drift=DriftConfig(window=64),
                          prediction=PredictionDriftConfig(baseline_error=0.1))

    def test_flat_prediction_without_baseline_stays_disabled(self):
        # Old semantics: prediction drift was armed iff baseline_error was
        # given; tolerance/min_samples alone configured nothing.
        with pytest.warns(DeprecationWarning):
            engine = ServingEngine(CONFIG, prediction_tolerance=3.0)
        assert engine.prediction_config is None


class TestShimErrors:
    def test_unknown_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="drift_widnow"):
            ServingEngine(CONFIG, drift_widnow=64)

    def test_mixing_grouped_and_flat_drift_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                ServingEngine(CONFIG, drift=DriftConfig(window=64),
                              drift_check_every=16)

    def test_mixing_grouped_and_flat_prediction_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                ServingEngine(
                    CONFIG,
                    prediction=PredictionDriftConfig(baseline_error=0.1),
                    prediction_baseline_error=0.2,
                )

    def test_flat_drift_with_grouped_prediction_is_fine(self):
        with pytest.warns(DeprecationWarning):
            engine = ServingEngine(
                CONFIG, drift_window=64,
                prediction=PredictionDriftConfig(baseline_error=0.1),
            )
        assert engine.drift_config.window == 64
        assert engine.prediction_config.baseline_error == 0.1


class TestConfigValidation:
    def test_drift_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="window"):
            DriftConfig(window=0)
        with pytest.raises(ValueError, match="check_every"):
            DriftConfig(check_every=0)
        with pytest.raises(ValueError, match="cooldown_s"):
            DriftConfig(cooldown_s=-1.0)
        with pytest.raises(ValueError, match="retrain_delay_s"):
            DriftConfig(retrain_delay_s=-0.5)

    def test_prediction_config_rejects_bad_values(self):
        with pytest.raises(ValueError, match="baseline_error"):
            PredictionDriftConfig(baseline_error=0.0)
        with pytest.raises(ValueError, match="tolerance"):
            PredictionDriftConfig(baseline_error=0.1, tolerance=0.0)
        with pytest.raises(ValueError, match="min_samples"):
            PredictionDriftConfig(baseline_error=0.1, min_samples=0)

    def test_configs_are_frozen(self):
        cfg = DriftConfig(window=64)
        with pytest.raises(AttributeError):
            cfg.window = 32

    def test_flat_attribute_views_preserved(self):
        # Checkpoint fingerprints and downstream code read the flat
        # attributes; the grouped API must keep them in place.
        detector = fitted_detector()
        engine = ServingEngine(
            CONFIG,
            drift=DriftConfig(detector=detector, window=48, check_every=24,
                              cooldown_s=9.0, retrain_delay_s=1.5),
            prediction=PredictionDriftConfig(baseline_error=0.2,
                                             tolerance=4.0, min_samples=16),
        )
        assert engine.drift_detector is detector
        assert engine.drift_window == 48
        assert engine.drift_check_every == 24
        assert engine.drift_cooldown_s == 9.0
        assert engine.retrain_delay_s == 1.5
        assert engine.prediction_baseline_error == 0.2
        assert engine.prediction_tolerance == 4.0
        assert engine.prediction_min_samples == 16
