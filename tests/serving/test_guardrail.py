"""SLO guardrail: breaker state machine and its engine integration.

Unit tests drive :class:`SLOGuardrail` directly with synthetic latency
windows; integration tests force a misprediction (an SLO-breaking config
the "learned" controller keeps choosing) and assert the breaker trips
within ``k`` windows, deploys the fallback, suppresses the controller
while open, emits ``guardrail.*`` telemetry — and never fires on a
compliant trace, where the data plane must stay bit-identical to a
guardrail-off run.
"""

import math

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.types import Decision
from repro.serving import (
    GuardrailConfig,
    ServingEngine,
    SimulatedCrash,
    SLOGuardrail,
    assert_serving_logs_equal,
)
from repro.serving.guardrail import CLOSED, HALF_OPEN, OPEN
from repro.telemetry import MetricsRegistry, use_registry

pytestmark = pytest.mark.serving

GOOD = BatchConfig(memory_mb=2048.0, batch_size=1, timeout=0.0)
BAD = BatchConfig(memory_mb=2048.0, batch_size=64, timeout=0.5)
SLO = 0.1


def guard(window=4, k=2, cooldown_s=5.0, probe_windows=2, fallback=None):
    return SLOGuardrail(
        config=GuardrailConfig(window=window, k=k, cooldown_s=cooldown_s,
                               probe_windows=probe_windows, fallback=fallback),
        slo=SLO,
    )


def violating(n=4):
    return np.full(n, 2 * SLO)


def compliant(n=4):
    return np.full(n, SLO / 10)


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="window"):
            GuardrailConfig(window=0)
        with pytest.raises(ValueError, match="percentile"):
            GuardrailConfig(percentile=0.0)
        with pytest.raises(ValueError, match="percentile"):
            GuardrailConfig(percentile=101.0)
        with pytest.raises(ValueError, match="k"):
            GuardrailConfig(k=0)
        with pytest.raises(ValueError, match="cooldown"):
            GuardrailConfig(cooldown_s=0.0)
        with pytest.raises(ValueError, match="probe_windows"):
            GuardrailConfig(probe_windows=0)
        with pytest.raises(ValueError, match="slo"):
            SLOGuardrail(config=GuardrailConfig(), slo=0.0)


class TestStateMachine:
    def test_trips_after_exactly_k_violating_windows(self):
        g = guard(k=3)
        assert g.observe(violating(), 0.0, GOOD) == []
        assert g.observe(violating(), 1.0, GOOD) == []
        actions = g.observe(violating(), 2.0, GOOD)
        assert [a for a, _ in actions] == ["tripped"]
        assert g.state == OPEN
        assert g.trips == 1

    def test_compliant_window_resets_the_streak(self):
        g = guard(k=2)
        g.observe(violating(), 0.0, GOOD)
        g.observe(compliant(), 1.0, GOOD)  # streak broken
        g.observe(violating(), 2.0, GOOD)
        assert g.state == CLOSED  # still one short of k
        assert g.observe(violating(), 3.0, GOOD)[0][0] == "tripped"

    def test_partial_windows_carry_over(self):
        g = guard(window=4, k=1)
        assert g.observe(violating(3), 0.0, GOOD) == []  # 3 of 4 buffered
        actions = g.observe(violating(5), 1.0, GOOD)  # completes 2 windows
        assert [a for a, _ in actions] == ["tripped"]

    def test_observed_percentile_is_reported(self):
        g = guard(k=1)
        [(action, observed)] = g.observe(violating(), 0.0, GOOD)
        assert action == "tripped"
        assert observed == pytest.approx(2 * SLO)

    def test_open_waits_out_cooldown_then_probes(self):
        g = guard(k=1, cooldown_s=5.0)
        g.observe(violating(), 0.0, GOOD)
        assert g.observe(violating(), 4.9, GOOD) == []  # still cooling down
        actions = g.observe(np.empty(0), 5.0, GOOD)
        assert [a for a, _ in actions] == ["probe"]
        assert g.state == HALF_OPEN
        assert math.isnan(actions[0][1])  # probes carry no window

    def test_half_open_restores_after_clean_probe_windows(self):
        g = guard(k=1, cooldown_s=1.0, probe_windows=2)
        g.observe(violating(), 0.0, GOOD)
        g.observe(compliant(), 2.0, GOOD)  # probe + first clean window
        actions = g.observe(compliant(), 3.0, GOOD)
        assert [a for a, _ in actions] == ["restored"]
        assert g.state == CLOSED
        assert g.restores == 1

    def test_half_open_retrips_on_a_single_violation(self):
        g = guard(k=3, cooldown_s=1.0)
        for t in range(3):
            g.observe(violating(), float(t), GOOD)
        assert g.state == OPEN  # tripped at t=2.0; cooldown ends at t=3.0
        actions = g.observe(violating(), 3.5, GOOD)  # probe, then re-trip
        assert [a for a, _ in actions] == ["probe", "tripped"]
        assert g.state == OPEN
        assert g.trips == 2

    def test_open_windows_are_consumed_and_discarded(self):
        # OPEN state: completed windows are consumed off the buffer but
        # produce no transitions and leave no residue in the violation or
        # probe streaks — the fallback is already deployed, so they carry
        # no new signal.
        g = guard(k=1, cooldown_s=100.0, window=4)
        g.observe(violating(), 0.0, GOOD)
        assert g.state == OPEN
        assert g.observe(violating(4), 1.0, GOOD) == []
        assert g.observe(compliant(4), 2.0, GOOD) == []
        assert g.state == OPEN
        assert g.violations == 0 and g.clean_probes == 0
        # Consumed, not parked: the buffer must not replay OPEN-era windows
        # into the half-open probe after the cooldown.
        assert g._window_buf == []
        actions = g.observe(np.empty(0), 200.0, GOOD)
        assert [a for a, _ in actions] == ["probe"]
        assert g.clean_probes == 0

    def test_open_partial_window_carries_into_half_open(self):
        # Only *complete* windows are discarded while OPEN; a buffered
        # partial window keeps accumulating and scores once full.
        g = guard(k=1, cooldown_s=1.0, window=4, probe_windows=1)
        g.observe(violating(), 0.0, GOOD)
        assert g.observe(compliant(3), 0.5, GOOD) == []  # 3 of 4 buffered
        actions = g.observe(compliant(1), 2.0, GOOD)  # probe + window full
        assert [a for a, _ in actions] == ["probe", "restored"]

    def test_open_state_discard_comment_is_pinned(self):
        # The OPEN-branch fall-through looks like a missing case; pin the
        # comment that documents it as deliberate.
        import inspect

        from repro.serving import guardrail as guardrail_module

        source = inspect.getsource(guardrail_module)
        assert ("# OPEN: the fallback is already deployed; windows completed"
                in source)
        assert "carry no new signal" in source

    def test_fallback_precedence(self):
        explicit = BatchConfig(memory_mb=1024.0, batch_size=2, timeout=0.01)
        g = guard(fallback=explicit)
        assert g.fallback_config(BAD) == explicit
        g = guard()
        g.observe(compliant(), 0.0, GOOD)  # records last known-good
        assert g.last_good == GOOD
        assert g.fallback_config(BAD) == GOOD
        g = guard()  # nothing known-good yet: conservative (M, B=1, T=0)
        assert g.fallback_config(BAD) == BatchConfig(
            memory_mb=BAD.memory_mb, batch_size=1, timeout=0.0)


class BadChooser:
    """A 'learned' controller whose predictions are always wrong: it keeps
    choosing an SLO-breaking configuration."""

    def choose(self, history, slo):
        return Decision(config=BAD, decision_time=0.0,
                        diagnostics={"predicted_p95": slo / 2})


def trace(seed=5, n=3000, lam=250.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def build_engine(config, chooser=None, guardrail=None):
    return ServingEngine(config, chooser=chooser, slo=SLO,
                         decision_interval_s=1.0 if chooser else None,
                         guardrail=guardrail)


class TestEngineIntegration:
    def test_trips_within_k_windows_under_forced_misprediction(self):
        gcfg = GuardrailConfig(window=32, k=2, cooldown_s=2.0)
        log = build_engine(BAD, BadChooser(), gcfg).run(trace(),
                                                        record_trace=True)
        assert log.guardrail_trips >= 1
        # The first trip happens at the k-th completed window: no completed
        # request beyond k * window precedes it.
        first_trip = next(e for e in log.event_trace
                          if e[0] == "guardrail" and e[2] == "tripped")
        served_before = sum(
            e[3] for e in log.event_trace
            if e[0] == "start" and e[6] <= first_trip[1]
        )
        assert served_before <= gcfg.window * (gcfg.k + 1)
        # The fallback actually deployed and decisions were suppressed.
        assert any(d.reason == "guardrail" for d in log.decisions)
        assert log.guardrail_suppressed >= 1
        assert log.guardrail_probes >= 1

    def test_trip_emits_telemetry(self):
        registry = MetricsRegistry()
        gcfg = GuardrailConfig(window=32, k=2, cooldown_s=2.0)
        with use_registry(registry):
            build_engine(BAD, BadChooser(), gcfg).run(trace())
        records = list(registry.records())
        counters = {r["name"]: r["value"] for r in records
                    if r.get("type") == "counter"}
        assert counters["guardrail.tripped"] >= 1
        assert counters["guardrail.probe"] >= 1
        assert counters["guardrail.suppressed_decisions"] >= 1
        events = [r for r in records if r.get("kind") == "guardrail"]
        assert any(e["action"] == "tripped" and e["state"] == "open"
                   for e in events)

    def test_restore_telemetry_when_controller_recovers(self):
        # A chooser that serves BAD until the breaker trips, then GOOD: the
        # half-open probe should succeed and the breaker close again.
        class RecoveringChooser:
            def __init__(self):
                self.calls = 0

            def choose(self, history, slo):
                self.calls += 1
                return Decision(config=BAD if self.calls <= 1 else GOOD,
                                decision_time=0.0)

        registry = MetricsRegistry()
        gcfg = GuardrailConfig(window=32, k=2, cooldown_s=2.0,
                               probe_windows=2)
        with use_registry(registry):
            log = build_engine(BAD, RecoveringChooser(), gcfg).run(trace())
        assert log.guardrail_trips >= 1
        assert log.guardrail_restores >= 1
        assert log.guardrail_state == "closed"
        counters = {r["name"]: r["value"] for r in registry.records()
                    if r.get("type") == "counter"}
        assert counters["guardrail.restored"] >= 1

    def test_never_trips_on_compliant_trace(self):
        gcfg = GuardrailConfig(window=32, k=2, cooldown_s=2.0)
        log = build_engine(GOOD, guardrail=gcfg).run(trace())
        assert log.guardrail_trips == 0
        assert log.guardrail_state == "closed"

    def test_compliant_data_plane_identical_to_guardrail_off(self):
        ts = trace()
        on = build_engine(GOOD, guardrail=GuardrailConfig(window=32, k=2,
                                                          cooldown_s=2.0))
        off = build_engine(GOOD)
        a, b = on.run(ts, record_trace=True), off.run(ts, record_trace=True)
        for name in ("latencies", "batch_costs", "start_times",
                     "dispatch_times", "batch_sizes", "batch_cold"):
            np.testing.assert_array_equal(getattr(a, name), getattr(b, name))
        assert a.event_trace == b.event_trace

    def test_guardrail_state_survives_kill_and_restore(self, tmp_path):
        gcfg = GuardrailConfig(window=32, k=2, cooldown_s=2.0)
        ts = trace()

        def factory():
            return build_engine(BAD, BadChooser(), gcfg)

        baseline = factory().run(ts, record_trace=True)
        assert baseline.guardrail_trips >= 2  # breaker was genuinely busy
        ck = tmp_path / "guard.ckpt"
        with pytest.raises(SimulatedCrash):
            factory().run(ts, record_trace=True, checkpoint_path=ck,
                          checkpoint_every=64,
                          crash_after_events=baseline.n_events // 2)
        resumed = factory().restore(ck)
        assert_serving_logs_equal(baseline, resumed)
