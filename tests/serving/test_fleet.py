"""Fleet serving: the keystone equivalence and multi-tenant behaviours.

The anchored correctness property (tier-1 pinned): a single-endpoint
:class:`FleetEngine` with an unconstrained shared budget reproduces
:class:`ServingEngine` **bit-for-bit** — per-request latencies, per-batch
costs, and the full event trace — faults on and off. Everything the fleet
adds (shared container budget, cross-lane queue draining, the MBS-style
cross-tenant scheduler, per-endpoint telemetry namespacing) is exercised
as behavioural deltas on top of that baseline.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.serverless.faults import FaultModel
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ColdStartModel
from repro.serving import (
    EndpointSpec,
    FleetBudget,
    FleetEngine,
    FleetScheduler,
    ServingEngine,
    WarmPoolConfig,
    split_by_shares,
)
from repro.telemetry import MetricsRegistry, use_registry

pytestmark = [pytest.mark.serving, pytest.mark.fleet]

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
OTHER = BatchConfig(memory_mb=1024.0, batch_size=4, timeout=0.02)


def poisson_trace(lam: float, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def make_platform(seed: int = 7, faults: bool = False,
                  limit: int | None = None) -> ServerlessPlatform:
    return ServerlessPlatform(
        seed=seed,
        cold_start=ColdStartModel(),
        concurrency_limit=limit,
        faults=(FaultModel(failure_rate=0.05, timeout_s=0.5)
                if faults else None),
    )


class StubChooser:
    """Replays a config sequence (same stub the engine tests use)."""

    def __init__(self, configs):
        self.configs = list(configs)
        self.calls = 0

    def choose(self, history, slo):
        from repro.core.types import Decision

        config = self.configs[min(self.calls, len(self.configs) - 1)]
        self.calls += 1
        return Decision(config=config, decision_time=1e-3)


def assert_bit_identical(fleet_log, ref_log):
    np.testing.assert_array_equal(fleet_log.latencies, ref_log.latencies)
    np.testing.assert_array_equal(fleet_log.dispatch_times,
                                  ref_log.dispatch_times)
    np.testing.assert_array_equal(fleet_log.start_times, ref_log.start_times)
    np.testing.assert_array_equal(fleet_log.batch_costs, ref_log.batch_costs)
    np.testing.assert_array_equal(fleet_log.batch_sizes, ref_log.batch_sizes)
    assert fleet_log.event_trace == ref_log.event_trace
    assert fleet_log.n_retries == ref_log.n_retries
    assert fleet_log.n_failed == ref_log.n_failed
    assert fleet_log.cold_starts == ref_log.cold_starts
    assert fleet_log.warm_starts == ref_log.warm_starts


class TestKeystoneEquivalence:
    """Single endpoint + unconstrained budget ≡ ServingEngine, bit-for-bit."""

    @pytest.mark.parametrize("faults", [False, True])
    @pytest.mark.parametrize("budget", [None, 64])
    def test_single_endpoint_reproduces_engine(self, faults, budget):
        ts = poisson_trace(150.0, 1200, seed=1)
        pool = WarmPoolConfig(keep_alive_s=2.0, max_containers=4,
                              max_queued_batches=3)
        ref = ServingEngine(
            CONFIG, platform=make_platform(faults=faults), pool=pool
        ).run(ts, record_trace=True)
        fleet = FleetEngine(
            [EndpointSpec(name="solo", config=CONFIG,
                          platform=make_platform(faults=faults), pool=pool)],
            max_containers=budget,  # None or generous: never binds
        )
        log = fleet.run({"solo": ts}, record_trace=True)["solo"]
        assert_bit_identical(log, ref)

    @pytest.mark.parametrize("limit", [None, 4])
    def test_equivalence_with_concurrency_limit(self, limit):
        ts = poisson_trace(200.0, 800, seed=2)
        ref = ServingEngine(
            CONFIG, platform=make_platform(limit=limit)
        ).run(ts, record_trace=True)
        fleet = FleetEngine([
            EndpointSpec(name="solo", config=CONFIG,
                         platform=make_platform(limit=limit))
        ])
        log = fleet.run({"solo": ts}, record_trace=True)["solo"]
        assert_bit_identical(log, ref)

    def test_equivalence_with_chooser_and_decisions(self):
        ts = poisson_trace(300.0, 1500, seed=3)
        kwargs = dict(slo=0.1, decision_interval_s=0.5, min_history=16)
        ref = ServingEngine(
            CONFIG, platform=make_platform(),
            chooser=StubChooser([OTHER, CONFIG]), **kwargs
        ).run(ts, record_trace=True)
        fleet = FleetEngine([
            EndpointSpec(name="solo", config=CONFIG,
                         platform=make_platform(),
                         chooser=StubChooser([OTHER, CONFIG]), **kwargs)
        ])
        log = fleet.run({"solo": ts}, record_trace=True)["solo"]
        assert_bit_identical(log, ref)
        assert len(log.decisions) == len(ref.decisions)
        assert log.reconfigurations == ref.reconfigurations


class TestSharedBudget:
    def two_endpoint_fleet(self, budget, lam=200.0, n=500):
        specs = [
            EndpointSpec(name="a", config=CONFIG,
                         platform=ServerlessPlatform(seed=2)),
            EndpointSpec(name="b", config=OTHER,
                         platform=ServerlessPlatform(seed=3)),
        ]
        traffic = {
            "a": poisson_trace(lam, n, seed=4),
            "b": poisson_trace(lam, n, seed=5),
        }
        return FleetEngine(specs, max_containers=budget).run(traffic)

    def test_binding_budget_queues_but_serves_everything(self):
        tight = self.two_endpoint_fleet(budget=1)
        free = self.two_endpoint_fleet(budget=None)
        for name in ("a", "b"):
            assert tight[name].n_served == tight[name].n_requests
            assert np.all(np.isfinite(tight[name].latencies))
        # The shared cap must actually bind: some starts delayed past
        # dispatch, which never happens unconstrained.
        delayed = sum(
            int(np.sum(tight[n].start_times > tight[n].dispatch_times))
            for n in ("a", "b")
        )
        assert delayed > 0
        for name in ("a", "b"):
            np.testing.assert_array_equal(
                free[name].start_times, free[name].dispatch_times
            )
        assert (tight["a"].latencies.max() + tight["b"].latencies.max()
                > free["a"].latencies.max() + free["b"].latencies.max())

    def test_budget_evicts_idle_containers_across_lanes(self):
        # Budget 1 with two tiers: every handover between lanes evicts
        # the other lane's idle container (a cross-tenant redeploy).
        log = self.two_endpoint_fleet(budget=1, lam=20.0, n=50)
        evictions = sum(log[n].evicted_containers for n in ("a", "b"))
        assert evictions > 0
        assert log.max_containers == 1

    def test_queued_only_lane_does_not_deadlock(self):
        # Lane b's single batch dispatches while lane a holds the only
        # budget slot; b has no completion events of its own, so only the
        # cross-lane drain can ever start it.
        specs = [
            EndpointSpec(name="a", config=BatchConfig(2048.0, 1, 0.0),
                         platform=ServerlessPlatform(seed=2)),
            EndpointSpec(name="b", config=BatchConfig(1024.0, 1, 0.0),
                         platform=ServerlessPlatform(seed=3)),
        ]
        traffic = {
            "a": np.array([0.0]),
            "b": np.array([1e-4]),  # arrives while a's invocation runs
        }
        log = FleetEngine(specs, max_containers=1).run(traffic)
        assert log["b"].n_served == 1
        assert np.all(np.isfinite(log["b"].latencies))
        # b's start waited for a's completion.
        assert log["b"].start_times[0] > log["b"].dispatch_times[0]

    def test_fleet_log_aggregates(self):
        log = self.two_endpoint_fleet(budget=None, n=300)
        assert log.endpoints == ["a", "b"]
        assert log.n_requests == 600
        assert log.n_served == 600
        assert log.total_cost == pytest.approx(
            log["a"].total_cost + log["b"].total_cost
        )
        assert log.cost_per_request == pytest.approx(log.total_cost / 600)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            FleetBudget(max_containers=0)
        with pytest.raises(ValueError):
            FleetEngine([EndpointSpec(name="a", config=CONFIG)],
                        max_containers=0)


class TestFleetScheduler:
    def test_arbitrates_shared_memory_and_meets_slos(self):
        rng_a = poisson_trace(100.0, 1500, seed=6)
        rng_b = poisson_trace(60.0, 900, seed=7)
        specs = [
            EndpointSpec(name="a", config=BatchConfig(512.0, 1, 0.0),
                         slo=0.2, platform=ServerlessPlatform(seed=2)),
            EndpointSpec(name="b", config=BatchConfig(512.0, 1, 0.0),
                         slo=0.05, platform=ServerlessPlatform(seed=3)),
        ]
        scheduler = FleetScheduler(
            memories=(1024.0, 2048.0), batch_sizes=(1, 2, 4, 8),
            timeouts=(0.0, 0.01, 0.02), min_history=32,
        )
        fleet = FleetEngine(specs, scheduler=scheduler,
                            scheduler_interval_s=3.0)
        log = fleet.run({"a": rng_a, "b": rng_b})
        assert log.fleet_decisions >= 1
        # Every fleet plan shares one memory tier across tenants.
        for name in ("a", "b"):
            fleet_decided = [d for d in log[name].decisions
                            if d.reason == "fleet"]
            assert fleet_decided
        mem_a = [d.config.memory_mb for d in log["a"].decisions
                 if d.reason == "fleet"]
        mem_b = [d.config.memory_mb for d in log["b"].decisions
                 if d.reason == "fleet"]
        assert mem_a == mem_b  # one M, per-endpoint (B, T): the MBS shape
        assert log["a"].p(95.0) <= 0.2
        assert log["b"].p(95.0) <= 0.05

    def test_abstains_without_history_and_choosers_fall_back(self):
        # min_history larger than the whole stream: the scheduler never
        # plans, and the lane's own chooser keeps controlling.
        ts = poisson_trace(300.0, 400, seed=8)
        spec = EndpointSpec(
            name="a", config=CONFIG, platform=ServerlessPlatform(seed=2),
            chooser=StubChooser([OTHER]), decision_interval_s=0.3,
            min_history=16,
        )
        scheduler = FleetScheduler(min_history=10_000)
        fleet = FleetEngine([spec], scheduler=scheduler,
                            scheduler_interval_s=0.5)
        log = fleet.run({"a": ts})
        assert log.fleet_decisions == 0
        assert any(d.reason == "interval" for d in log["a"].decisions)
        assert all(d.reason != "fleet" for d in log["a"].decisions)

    def test_decide_returns_none_below_min_history(self):
        scheduler = FleetScheduler(min_history=32)
        specs = [EndpointSpec(name="a", config=CONFIG)]
        assert scheduler.decide({"a": np.ones(8)}, specs) is None
        assert scheduler.decide({}, specs) is None

    def test_planning_never_consumes_live_platform_rng(self):
        # Identical runs with and without the scheduler enabled must draw
        # identical fault sequences: planning uses fresh platforms.
        ts = poisson_trace(150.0, 800, seed=9)

        def run(with_scheduler):
            spec = EndpointSpec(name="a", config=CONFIG,
                                platform=make_platform(faults=True))
            fleet = FleetEngine(
                [spec],
                scheduler=(FleetScheduler(memories=(2048.0,),
                                          batch_sizes=(8,),
                                          timeouts=(0.05,))
                           if with_scheduler else None),
                scheduler_interval_s=2.0 if with_scheduler else None,
            )
            return fleet.run({"a": ts})["a"]

        base, planned = run(False), run(True)
        # The scheduler's only plan equals the active config, so nothing
        # reconfigures — outputs must be bit-identical.
        np.testing.assert_array_equal(base.latencies, planned.latencies)
        np.testing.assert_array_equal(base.batch_costs, planned.batch_costs)
        assert base.n_retries == planned.n_retries

    def test_scheduler_requires_interval(self):
        with pytest.raises(ValueError):
            FleetEngine([EndpointSpec(name="a", config=CONFIG)],
                        scheduler=FleetScheduler())


class TestTelemetryNamespacing:
    def test_two_endpoints_disjoint_prefixes_no_crosstalk(self):
        specs = [
            EndpointSpec(name="a", config=CONFIG,
                         platform=ServerlessPlatform(seed=2)),
            EndpointSpec(name="b", config=OTHER,
                         platform=ServerlessPlatform(seed=3)),
        ]
        traffic = {
            "a": poisson_trace(200.0, 300, seed=10),
            "b": poisson_trace(200.0, 200, seed=11),
        }
        registry = MetricsRegistry()
        with use_registry(registry):
            log = FleetEngine(specs).run(traffic)
        counters = {
            r["name"]: r["value"] for r in registry.records()
            if r["type"] == "counter"
        }
        # Per-endpoint namespaces, nothing under the bare single-engine
        # prefix (no cross-talk between lanes or into "serving.*").
        assert counters["serving.a.requests"] == 300
        assert counters["serving.b.requests"] == 200
        assert "serving.requests" not in counters
        assert counters["serving.a.batches"] == log["a"].batch_sizes.size
        assert counters["serving.b.batches"] == log["b"].batch_sizes.size
        a_names = {n for n in counters if n.startswith("serving.a.")}
        b_names = {n for n in counters if n.startswith("serving.b.")}
        assert a_names and b_names and not (a_names & b_names)

    def test_dashboard_gets_fleet_section(self):
        from repro.telemetry import render_dashboard

        registry = MetricsRegistry()
        with use_registry(registry):
            FleetEngine([
                EndpointSpec(name="a", config=CONFIG,
                             platform=ServerlessPlatform(seed=2)),
            ]).run({"a": poisson_trace(200.0, 200, seed=12)})
        dashboard = render_dashboard(registry)
        assert "fleet" in dashboard
        assert "serving.a.requests" in dashboard

    def test_single_engine_keeps_bare_prefix(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            ServingEngine(CONFIG, platform=ServerlessPlatform()).run(
                poisson_trace(200.0, 200, seed=13)
            )
        names = {
            r["name"] for r in registry.records() if r["type"] == "counter"
        }
        assert "serving.requests" in names


class TestSpecsAndSplitting:
    def test_endpoint_name_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            EndpointSpec(name="", config=CONFIG)
        with pytest.raises(ValueError, match=r"\."):
            EndpointSpec(name="a.b", config=CONFIG)
        with pytest.raises(ValueError, match="slo"):
            EndpointSpec(name="a", config=CONFIG, slo=0.0)
        with pytest.raises(ValueError, match="percentile"):
            EndpointSpec(name="a", config=CONFIG, percentile=0.0)
        with pytest.raises(ValueError, match="share"):
            EndpointSpec(name="a", config=CONFIG, share=1.5)

    def test_fleet_engine_validation(self):
        with pytest.raises(ValueError):
            FleetEngine([])
        spec = EndpointSpec(name="a", config=CONFIG)
        with pytest.raises(ValueError, match="unique"):
            FleetEngine([spec, spec])

    def test_run_rejects_unknown_traffic_keys(self):
        fleet = FleetEngine([EndpointSpec(name="a", config=CONFIG)])
        with pytest.raises(ValueError, match="unknown"):
            fleet.run({"a": np.array([0.0]), "zz": np.array([0.0])})

    def test_split_by_shares_partitions_exactly(self):
        specs = [
            EndpointSpec(name="a", config=CONFIG, share=0.7),
            EndpointSpec(name="b", config=OTHER, share=0.3),
        ]
        ts = poisson_trace(100.0, 2000, seed=14)
        parts = split_by_shares(ts, specs, seed=0)
        assert set(parts) == {"a", "b"}
        merged = np.sort(np.concatenate([parts["a"], parts["b"]]))
        np.testing.assert_array_equal(merged, ts)
        # Roughly proportional, and deterministic in the seed.
        assert 0.6 < parts["a"].size / ts.size < 0.8
        again = split_by_shares(ts, specs, seed=0)
        np.testing.assert_array_equal(parts["a"], again["a"])

    def test_split_requires_shares(self):
        specs = [EndpointSpec(name="a", config=CONFIG)]
        with pytest.raises(ValueError, match="share"):
            split_by_shares(np.array([0.0, 1.0]), specs)

    def test_run_splits_single_trace(self):
        specs = [
            EndpointSpec(name="a", config=CONFIG, share=0.5,
                         platform=ServerlessPlatform(seed=2)),
            EndpointSpec(name="b", config=OTHER, share=0.5,
                         platform=ServerlessPlatform(seed=3)),
        ]
        ts = poisson_trace(150.0, 600, seed=15)
        log = FleetEngine(specs).run(ts)
        assert log.n_requests == 600
        assert log["a"].n_requests + log["b"].n_requests == 600
