"""Token-streaming generation workload (PR 9).

Covers the full stack: the prefill/decode timing model
(:class:`TokenServiceProfile` — the old request-level profile is the
``output_tokens == 1`` special case), the seeded per-request length model
(order- and worker-independent draws), the continuous-batching state
machine and its admission knobs, both engine dispatchers (buffer-mode
bit-identity with the legacy engine; continuous-mode fast ≡ stepwise and
crash-restore safety), the goodput/TTFT/TPOT accessors on the log, the
JSON config schema, fleet lanes, the generation labeling path for the
surrogate, and the headline evaluation: continuous batching beats the
size/timeout buffer on goodput at equal-or-lower cost.
"""

import json
import math
from dataclasses import replace

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.batching.continuous import ContinuousSession, GenRequest
from repro.serverless.generation import (
    DEFAULT_TOKEN_PROFILE,
    TokenLengthModel,
    TokenServiceProfile,
)
from repro.serverless.faults import FaultModel
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ServiceProfile
from repro.serving import (
    EndpointSpec,
    FleetEngine,
    GenerationConfig,
    GenerationConfigError,
    ServingEngine,
    WarmPoolConfig,
    assert_serving_logs_equal,
    load_generation_config,
    run_with_crashes,
    validate_generation_config,
)
from repro.serving.fleet_config import FleetConfigError, validate_fleet_config
from repro.telemetry.metrics import MetricsRegistry, use_registry

pytestmark = [pytest.mark.serving, pytest.mark.gen]

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)


def poisson_trace(seed=7, n=2000, lam=200.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def build_engine(generation, keep_alive=30.0, max_containers=64, **kwargs):
    return ServingEngine(
        CONFIG,
        platform=ServerlessPlatform(),
        pool=WarmPoolConfig(keep_alive_s=keep_alive,
                            max_containers=max_containers),
        generation=generation,
        **kwargs,
    )


# ----------------------------------------------------------- timing model
class TestTokenServiceProfile:
    def test_ttft_is_the_request_level_service_time(self):
        """Prefill timing IS the old model — the key identity that makes
        ``output_tokens == 1`` reproduce the legacy engine for free."""
        profile = ServiceProfile()
        token = TokenServiceProfile(profile=profile)
        for memory in (512.0, 1024.0, 2048.0, 4096.0):
            for size in (1, 4, 16):
                assert token.ttft(memory, size) == profile.service_time(
                    memory, size
                )

    def test_tpot_batch_and_memory_scaling(self):
        token = TokenServiceProfile()
        # More memory -> faster decode; bigger batch -> slower per token.
        assert token.tpot(4096.0, 8) < token.tpot(1024.0, 8)
        assert token.tpot(2048.0, 16) > token.tpot(2048.0, 4)

    def test_tpot_formula(self):
        token = TokenServiceProfile(decode_time=0.004, decode_exponent=0.5,
                                    decode_memory_dampening=0.5)
        speedup = token.profile.speedup(2048.0)
        expected = 0.004 * math.sqrt(8) / math.sqrt(speedup)
        assert token.tpot(2048.0, 8) == pytest.approx(expected)

    def test_one_token_generation_is_pure_prefill(self):
        token = DEFAULT_TOKEN_PROFILE
        assert token.generation_time(2048.0, 8, 1) == token.ttft(2048.0, 8)
        more = token.generation_time(2048.0, 8, 5)
        assert more == pytest.approx(
            token.ttft(2048.0, 8) + 4 * token.tpot(2048.0, 8)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenServiceProfile(decode_time=-1.0)
        with pytest.raises(ValueError):
            TokenServiceProfile(decode_exponent=0.0)
        with pytest.raises(ValueError):
            TokenServiceProfile(decode_memory_dampening=1.5)


# ------------------------------------------------------------ length model
class TestTokenLengthModel:
    def test_same_seed_identical_trace(self):
        model = TokenLengthModel()
        p1, o1 = model.sample(500, seed=11)
        p2, o2 = model.sample(500, seed=11)
        np.testing.assert_array_equal(p1, p2)
        np.testing.assert_array_equal(o1, o2)
        assert p1.dtype == np.int64 and o1.dtype == np.int64

    def test_different_seeds_differ(self):
        model = TokenLengthModel()
        p1, _ = model.sample(500, seed=11)
        p2, _ = model.sample(500, seed=12)
        assert not np.array_equal(p1, p2)

    def test_per_request_draws_are_order_and_worker_independent(self):
        """Request i's tokens depend only on (seed, i): drawing them one
        at a time, in any order, from any process, matches the batch —
        the property that keeps parallel labeling bit-identical."""
        model = TokenLengthModel()
        prompts, outputs = model.sample(64, seed=3)
        for i in reversed(range(64)):  # deliberately out of order
            assert model.sample_one(3, i) == (prompts[i], outputs[i])

    def test_caps_and_minimums(self):
        model = TokenLengthModel(prompt_mean=2.0, prompt_max=4,
                                 output_mean=1.0, output_max=1)
        prompts, outputs = model.sample(2000, seed=0)
        assert prompts.min() >= 1 and prompts.max() <= 4
        np.testing.assert_array_equal(outputs, np.ones(2000, dtype=np.int64))

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenLengthModel(prompt_mean=0.5)
        with pytest.raises(ValueError):
            TokenLengthModel(output_mean=100.0, output_max=10)

    def test_fingerprint_distinguishes_models(self):
        assert TokenLengthModel().fingerprint() != TokenLengthModel(
            output_mean=8.0
        ).fingerprint()


# ----------------------------------------------------- continuous session
def _req(i, arrival=0.0, prompt=10, out=3):
    return GenRequest(index=i, arrival=arrival, prompt_tokens=prompt,
                      output_tokens=out)


class TestContinuousSession:
    def make(self, batch_size=4, max_batch_tokens=None):
        return ContinuousSession(
            profile=DEFAULT_TOKEN_PROFILE, memory_mb=2048.0,
            batch_size=batch_size, max_batch_tokens=max_batch_tokens,
        )

    def test_prefill_then_decode_then_drain(self):
        from collections import deque

        sess = self.make()
        queue = deque([_req(0, out=2), _req(1, out=1)])
        first = sess.step(queue)
        assert first.next_kind == "prefill"
        assert first.next_duration == DEFAULT_TOKEN_PROFILE.ttft(2048.0, 2)
        second = sess.step(queue)
        # Both prefilled; the one-token request finished at the boundary.
        assert {r.index for r in second.prefilled} == {0, 1}
        assert [r.index for r in second.finished] == [1]
        assert second.next_kind == "decode"
        assert second.next_duration == DEFAULT_TOKEN_PROFILE.tpot(2048.0, 1)
        third = sess.step(queue)
        assert [r.index for r in third.finished] == [0]
        assert third.next_duration is None
        assert sess.n_served == 2
        assert sess.n_prefills == 1 and sess.n_decodes == 1

    def test_fifo_admission_respects_batch_size(self):
        from collections import deque

        sess = self.make(batch_size=2)
        queue = deque([_req(i) for i in range(5)])
        sess.step(queue)
        assert [r.index for r in sess.pending_admits] == [0, 1]
        assert len(queue) == 3

    def test_prefill_preempts_decode(self):
        from collections import deque

        sess = self.make()
        queue = deque([_req(0, out=5)])
        sess.step(queue)
        sess.step(queue)  # request 0 now decoding
        queue.append(_req(1))
        res = sess.step(queue)
        assert res.next_kind == "prefill"

    def test_token_budget_blocks_joining(self):
        from collections import deque

        sess = self.make(max_batch_tokens=30)
        queue = deque([_req(0, prompt=20, out=5), _req(1, prompt=20, out=5)])
        sess.step(queue)
        assert [r.index for r in sess.pending_admits] == [0]
        assert len(queue) == 1
        assert not sess.can_accept(queue[0])

    def test_oversized_request_still_runs_alone(self):
        """Liveness: a request whose footprint exceeds the whole budget is
        admitted into an empty batch rather than starving forever."""
        from collections import deque

        sess = self.make(max_batch_tokens=10)
        queue = deque([_req(0, prompt=100, out=50)])
        res = sess.step(queue)
        assert [r.index for r in sess.pending_admits] == [0]
        assert not queue
        assert res.next_kind == "prefill"


# --------------------------------------------------- engine: buffer mode
class TestBufferDispatcherBitIdentity:
    def legacy_generation(self):
        """output_tokens == 1 for every request: zero decode steps."""
        return GenerationConfig(
            dispatcher="buffer",
            length_model=TokenLengthModel(output_mean=1.0, output_max=1),
        )

    def test_single_token_buffer_matches_legacy_engine(self):
        """The acceptance pin: generation off vs buffer-generation with
        one-token outputs is the same engine, bit for bit."""
        ts = poisson_trace()
        base = build_engine(None).run(ts, name="legacy")
        gen = build_engine(self.legacy_generation()).run(ts, name="gen")
        np.testing.assert_array_equal(base.latencies, gen.latencies)
        np.testing.assert_array_equal(base.batch_costs, gen.batch_costs)
        np.testing.assert_array_equal(base.batch_sizes, gen.batch_sizes)
        np.testing.assert_array_equal(base.start_times, gen.start_times)
        # TTFT is the full latency when there is nothing after prefill,
        # and one-token requests have no decode pace at all.
        np.testing.assert_array_equal(gen.ttft, gen.latencies)
        assert np.isnan(gen.tpot).all()

    def test_multi_token_buffer_holds_for_longest_decode(self):
        ts = poisson_trace(n=400)
        gen = GenerationConfig(
            dispatcher="buffer",
            length_model=TokenLengthModel(output_mean=16.0),
        )
        log = build_engine(gen).run(ts, name="buffer-gen")
        assert log.is_generation
        # Decode extends every multi-token request beyond its TTFT.
        multi = log.output_tokens > 1
        assert multi.any()
        assert (log.latencies[multi] > log.ttft[multi]).all()
        one = ~multi
        np.testing.assert_array_equal(log.latencies[one], log.ttft[one])
        assert np.isfinite(log.tpot[multi]).all()
        assert np.isnan(log.tpot[one]).all()
        assert log.gen_tokens == int(log.output_tokens.sum())


# ----------------------------------------------- engine: continuous mode
class TestContinuousDispatcher:
    def generation(self, **kwargs):
        defaults = dict(
            dispatcher="continuous",
            length_model=TokenLengthModel(prompt_mean=64.0, output_mean=16.0),
            ttft_slo=0.05,
        )
        defaults.update(kwargs)
        return GenerationConfig(**defaults)

    def test_serves_everything_and_records_token_metrics(self):
        ts = poisson_trace(n=800)
        log = build_engine(self.generation()).run(ts, name="cont")
        assert log.n_shed == 0
        assert np.isfinite(log.latencies).all()
        assert np.isfinite(log.ttft).all()
        assert (log.latencies >= log.ttft).all()
        assert log.gen_sessions > 0
        assert log.gen_decode_iterations > 0
        assert log.gen_tokens == int(log.output_tokens.sum())
        # One batch row per session, each billed as one invocation.
        assert log.batch_sizes.size == log.gen_sessions
        assert int(log.batch_sizes.sum()) == log.n_requests

    def test_fast_path_matches_stepwise(self):
        ts = poisson_trace(n=800)
        fast = build_engine(self.generation()).run(ts, name="fast")
        with use_registry(MetricsRegistry()):  # forces the stepwise loop
            slow = build_engine(self.generation()).run(ts, name="slow")
        np.testing.assert_array_equal(fast.latencies, slow.latencies)
        np.testing.assert_array_equal(fast.ttft, slow.ttft)
        np.testing.assert_array_equal(fast.tpot, slow.tpot)
        np.testing.assert_array_equal(fast.batch_costs, slow.batch_costs)
        assert fast.gen_sessions == slow.gen_sessions

    def test_crash_and_restore_is_bit_identical(self, tmp_path):
        ts = poisson_trace(n=600)
        reference = build_engine(self.generation()).run(ts, name="ref")
        crashed, kill_points = run_with_crashes(
            lambda: build_engine(self.generation()),
            ts,
            tmp_path / "gen.ckpt",
            n_crashes=2,
            checkpoint_every=128,
            name="ref",
        )
        assert kill_points  # the drill actually killed the run
        assert_serving_logs_equal(reference, crashed)

    def test_max_waiting_sheds_and_charges_goodput(self):
        ts = poisson_trace(n=600, lam=2000.0)
        gen = self.generation(max_waiting=0)
        log = build_engine(gen, max_containers=1).run(ts, name="shed")
        assert log.n_shed > 0
        assert log.gen_shed == log.n_shed
        assert np.isnan(log.ttft[log.shed]).all()
        # Shed requests are misses, not absences: goodput with shedding
        # must sit strictly below the no-shed goodput on the same trace.
        free = build_engine(gen).run(ts, name="noshed")
        assert log.goodput() < free.goodput()

    def test_sessions_pin_config_and_release_containers(self):
        ts = poisson_trace(n=400)
        with use_registry(MetricsRegistry()) as registry:
            log = build_engine(self.generation()).run(ts, name="counters")
        counters = {
            record["name"]: record["value"]
            for record in registry.records() if record["type"] == "counter"
        }
        assert counters["serving.gen.requests"] == log.n_requests
        assert counters["serving.gen.sessions"] == log.gen_sessions
        assert counters["serving.gen.tokens"] == log.gen_tokens
        assert (
            counters["serving.gen.prefill_iterations"]
            == log.gen_prefill_iterations
        )

    def test_generation_rejects_fault_injection(self):
        platform = ServerlessPlatform(faults=FaultModel(failure_rate=0.1))
        with pytest.raises(ValueError, match="fault injection"):
            ServingEngine(CONFIG, platform=platform,
                          generation=self.generation())

    def test_fingerprint_gates_restore(self, tmp_path):
        ts = poisson_trace(n=400)
        engine = build_engine(self.generation())
        engine.run(ts, name="ckpt", checkpoint_path=tmp_path / "gen.ckpt",
                   checkpoint_every=64)
        from repro.serving import CheckpointError

        other = build_engine(self.generation(seed=999))
        with pytest.raises(CheckpointError):
            other.restore(tmp_path / "gen.ckpt")


# ------------------------------------------------------- log accessors
class TestGenerationLog:
    def test_percentiles_and_attainment(self):
        ts = poisson_trace(n=600)
        gen = GenerationConfig(
            dispatcher="continuous",
            length_model=TokenLengthModel(output_mean=8.0),
            ttft_slo=0.05, tpot_slo=0.5,
        )
        log = build_engine(gen).run(ts, name="acc")
        assert 0.0 < log.p_ttft(95.0) <= log.p(95.0)
        assert log.p_tpot(95.0) > 0.0
        assert 0.0 <= log.ttft_attainment() <= 1.0
        assert log.goodput() > 0.0
        duration = float(ts[-1] - ts[0])
        assert log.goodput(duration) <= log.n_requests / duration + 1e-9

    def test_non_generation_log_rejects_token_accessors(self):
        log = build_engine(None).run(poisson_trace(n=200), name="plain")
        assert not log.is_generation
        with pytest.raises(ValueError, match="not a generation log"):
            log.p_ttft(95.0)
        with pytest.raises(ValueError, match="not a generation log"):
            log.p_tpot(95.0)
        with pytest.raises(ValueError, match="not a generation log"):
            log.ttft_attainment()


# ------------------------------------------------------------ config layer
class TestGenerationConfigSchema:
    def test_defaults(self):
        cfg = validate_generation_config({})
        assert cfg.dispatcher == "continuous"
        assert cfg.max_batch_tokens is None
        assert cfg.token_profile == TokenServiceProfile()
        assert cfg.length_model == TokenLengthModel()

    def test_full_document_round_trip(self, tmp_path):
        doc = {
            "dispatcher": "buffer", "max_batch_tokens": 4096,
            "max_waiting": 16, "ttft_slo": 0.05, "tpot_slo": 0.01,
            "seed": 3,
            "length_model": {"prompt_mean": 64, "output_mean": 8},
            "profile": {"decode_time": 0.001},
        }
        path = tmp_path / "gen.json"
        path.write_text(json.dumps(doc))
        cfg = load_generation_config(path)
        assert cfg.dispatcher == "buffer"
        assert cfg.max_batch_tokens == 4096
        assert cfg.length_model.output_mean == 8.0
        assert cfg.token_profile.decode_time == 0.001
        assert cfg.fingerprint() == validate_generation_config(doc).fingerprint()

    @pytest.mark.parametrize("doc, path_label", [
        ({"dispatcher": "magic"}, "generation.dispatcher"),
        ({"ttft_slo": 0}, "generation.ttft_slo"),
        ({"tpot_slo": -0.1}, "generation.tpot_slo"),
        ({"max_batch_tokens": 0}, "generation.max_batch_tokens"),
        ({"seed": -1}, "generation.seed"),
        ({"length_model": {"prompt_mean": 0}},
         "generation.length_model.prompt_mean"),
        ({"length_model": {"output_mean": 5000}},
         "generation.length_model.output_mean"),
        ({"profile": {"decode_exponent": 0}},
         "generation.profile.decode_exponent"),
        ({"unknown_knob": 1}, "generation:"),
        ({"length_model": {"typo": 1}}, "generation.length_model"),
        ([1, 2], "generation:"),
    ])
    def test_path_named_errors(self, doc, path_label):
        with pytest.raises(GenerationConfigError, match=None) as err:
            validate_generation_config(doc)
        assert path_label in str(err.value)

    def test_unreadable_and_invalid_json(self, tmp_path):
        with pytest.raises(GenerationConfigError, match="cannot read"):
            load_generation_config(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(GenerationConfigError, match="not valid JSON"):
            load_generation_config(bad)

    def test_config_post_init_validation(self):
        with pytest.raises(ValueError):
            GenerationConfig(dispatcher="magic")
        with pytest.raises(ValueError):
            GenerationConfig(max_batch_tokens=0)
        with pytest.raises(ValueError):
            GenerationConfig(ttft_slo=0.0)


# ------------------------------------------------------------------ fleet
@pytest.mark.fleet
class TestFleetGeneration:
    def test_endpoint_generation_error_paths_are_prefixed(self):
        doc = {"endpoints": [
            {"name": "chat", "memory_mb": 2048, "batch_size": 8,
             "timeout": 0.05, "generation": {"ttft_slo": -1}},
        ]}
        with pytest.raises(FleetConfigError) as err:
            validate_fleet_config(doc)
        assert "endpoints[0].generation.ttft_slo" in str(err.value)

    def test_mixed_fleet_serves_generation_lane(self):
        doc = {"endpoints": [
            {"name": "chat", "memory_mb": 2048, "batch_size": 8,
             "timeout": 0.05, "share": 0.5, "keep_alive_s": 30.0,
             "generation": {"dispatcher": "continuous", "ttft_slo": 0.05,
                            "length_model": {"output_mean": 8}}},
            {"name": "embed", "memory_mb": 1024, "batch_size": 16,
             "timeout": 0.02, "share": 0.5, "keep_alive_s": 30.0},
        ]}
        engine = validate_fleet_config(doc).build()
        log = engine.run(poisson_trace(n=800), name="mixed")
        chat, embed = log["chat"], log["embed"]
        assert chat.is_generation and not embed.is_generation
        assert chat.gen_tokens > chat.n_requests  # multi-token outputs
        assert chat.goodput() > 0.0
        assert np.isfinite(embed.latencies).all()

    def test_generation_lane_matches_single_engine(self):
        """One generation lane, unconstrained budget: the fleet keystone
        equivalence extends to token-streaming endpoints."""
        gen = GenerationConfig(
            dispatcher="continuous",
            length_model=TokenLengthModel(output_mean=8.0),
        )
        ts = poisson_trace(n=600)
        single = build_engine(gen).run(ts, name="single")
        spec = EndpointSpec(
            name="only", config=CONFIG,
            platform=ServerlessPlatform(),
            pool=WarmPoolConfig(keep_alive_s=30.0, max_containers=64),
            generation=gen,
        )
        fleet = FleetEngine([spec]).run({"only": ts}, name="fleet")["only"]
        np.testing.assert_array_equal(single.latencies, fleet.latencies)
        np.testing.assert_array_equal(single.ttft, fleet.ttft)
        np.testing.assert_array_equal(single.batch_costs, fleet.batch_costs)


# --------------------------------------------------------------- surrogate
class TestGenerationSurrogate:
    def test_five_feature_dataset_and_training(self):
        from repro.core import (
            DeepBATSurrogate,
            TrainConfig,
            generate_generation_dataset,
            train_surrogate,
        )

        rng = np.random.default_rng(0)
        history = rng.exponential(0.01, size=3000)
        gen = GenerationConfig(
            dispatcher="buffer",
            length_model=TokenLengthModel(prompt_mean=32.0, output_mean=8.0),
        )
        ds = generate_generation_dataset(
            history, n_samples=16, generation=gen, seq_len=16, seed=3,
        )
        assert ds.features.shape == (16, 5)
        # Columns: (M, B, T) from the grid, then token statistics in the
        # neighbourhood of the length-model means.
        assert (ds.features[:, 0] > 0).all()  # memory_mb
        assert (ds.features[:, 1] >= 1).all()  # batch_size
        assert 8.0 < ds.features[:, 3].mean() < 128.0
        assert 2.0 < ds.features[:, 4].mean() < 32.0
        assert np.isfinite(ds.targets).all()
        # TTFT percentile columns are monotone across the block.
        lat = ds.targets[:, 1:]
        assert (np.diff(lat, axis=1) >= -1e-12).all()

        model = DeepBATSurrogate(seq_len=16, n_features=5,
                                 n_outputs=ds.spec.n_outputs, seed=0)
        trained = train_surrogate(
            ds, model=model, config=TrainConfig(epochs=2, batch_size=8, seed=0)
        )
        pred = trained.predict(ds.sequences[:4], ds.features[:4])
        assert pred.shape == (4, ds.spec.n_outputs)
        assert np.isfinite(pred).all()

    def test_labeling_is_worker_independent(self):
        from repro.core import generate_generation_dataset

        rng = np.random.default_rng(1)
        history = rng.exponential(0.01, size=3000)
        gen = GenerationConfig(
            dispatcher="buffer",
            length_model=TokenLengthModel(prompt_mean=32.0, output_mean=8.0),
        )
        kwargs = dict(n_samples=8, generation=gen, seq_len=16, seed=5)
        serial = generate_generation_dataset(history, **kwargs)
        parallel = generate_generation_dataset(history, workers=2, **kwargs)
        np.testing.assert_array_equal(serial.features, parallel.features)
        np.testing.assert_array_equal(serial.targets, parallel.targets)


# ------------------------------------------------------- headline pinned eval
class TestContinuousBeatsBuffer:
    """The PR's headline claim, pinned as a tier-1 regression.

    Same trace, same platform, same (M, B, T) and pool: iteration-level
    continuous batching must beat the size/timeout buffer on goodput under
    a tight TTFT SLO — buffered requests pay batch formation up front and
    then wait for the whole batch's longest decode — at equal-or-lower
    cost, because sessions hold one container for many requests instead
    of billing each batch's full decode tail.
    """

    TTFT_SLO = 0.05
    #: Asserted improvement floor (measured ratio ≈ 1.15 on this pin).
    GOODPUT_FLOOR = 1.08

    def run_pair(self):
        ts = poisson_trace(seed=7, n=2000, lam=200.0)
        length = TokenLengthModel(output_mean=16.0)
        logs = {}
        for dispatcher in ("buffer", "continuous"):
            gen = GenerationConfig(dispatcher=dispatcher, length_model=length,
                                   ttft_slo=self.TTFT_SLO, seed=0)
            logs[dispatcher] = build_engine(gen).run(ts, name=dispatcher)
        return logs

    def test_continuous_wins_goodput_at_equal_or_lower_cost(self):
        logs = self.run_pair()
        buffer_goodput = logs["buffer"].goodput()
        continuous_goodput = logs["continuous"].goodput()
        assert continuous_goodput > buffer_goodput * self.GOODPUT_FLOOR
        assert logs["continuous"].total_cost <= logs["buffer"].total_cost
        # Same workload either way — the win is scheduling, not shedding.
        assert logs["buffer"].n_shed == 0
        assert logs["continuous"].n_shed == 0
        np.testing.assert_array_equal(
            logs["buffer"].output_tokens, logs["continuous"].output_tokens
        )

    def test_win_holds_as_the_slo_tightens(self):
        ts = poisson_trace(seed=7, n=2000, lam=200.0)
        length = TokenLengthModel(output_mean=16.0)
        for slo in (0.04, 0.03):
            pair = {}
            for dispatcher in ("buffer", "continuous"):
                gen = GenerationConfig(dispatcher=dispatcher,
                                       length_model=length, ttft_slo=slo)
                log = build_engine(gen).run(ts, name=f"{dispatcher}-{slo}")
                pair[dispatcher] = log.goodput()
            assert pair["continuous"] > pair["buffer"]
