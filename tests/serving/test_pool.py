"""Unit tests for the warm-pool keep-alive model."""

import math

import pytest

from repro.serverless.service_profile import ColdStartModel
from repro.serving.pool import ReferenceWarmPool, WarmPool, WarmPoolConfig

pytestmark = pytest.mark.serving


def full_state(pool):
    """Every internal observable: containers, both heaps, all counters."""
    return (
        {cid: (c.memory_mb, c.free_at) for cid, c in pool._containers.items()},
        list(pool._idle_heap),
        {tier: list(h) for tier, h in pool._warm_heaps.items()},
        (pool.stats.cold_starts, pool.stats.warm_starts, pool.stats.expired,
         pool.stats.evicted, pool.stats.prewarmed, pool.stats.retired),
    )


class TestWarmReuse:
    def test_first_acquire_is_cold(self):
        pool = WarmPool()
        lease = pool.acquire(0.0, 2048.0)
        assert lease.cold
        assert pool.stats.cold_starts == 1

    def test_released_container_is_reused_warm(self):
        pool = WarmPool()
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        b = pool.acquire(2.0, 2048.0)
        assert not b.cold
        assert b.container_id == a.container_id
        assert pool.stats.warm_starts == 1

    def test_busy_container_is_not_reused(self):
        pool = WarmPool()
        a = pool.acquire(0.0, 2048.0)
        b = pool.acquire(0.5, 2048.0)
        assert b.cold
        assert b.container_id != a.container_id

    def test_wrong_memory_tier_is_cold(self):
        pool = WarmPool()
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        b = pool.acquire(2.0, 4096.0)
        assert b.cold

    def test_mru_pick_among_warm(self):
        # The most-recently-freed matching container is reused first.
        pool = WarmPool()
        a = pool.acquire(0.0, 2048.0)
        b = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        pool.release(b.container_id, 2.0)
        c = pool.acquire(3.0, 2048.0)
        assert c.container_id == b.container_id

    def test_release_at_acquire_instant_counts_as_warm(self):
        # free_at <= now: a container freed exactly at the dispatch time is
        # available — the offline throttle's ``start = slot`` equality case.
        pool = WarmPool()
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 5.0)
        assert not pool.acquire(5.0, 2048.0).cold


class TestKeepAlive:
    def test_idle_past_keep_alive_expires(self):
        pool = WarmPool(WarmPoolConfig(keep_alive_s=10.0))
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        lease = pool.acquire(12.0, 2048.0)  # idle 11s > 10s
        assert lease.cold
        assert pool.stats.expired == 1

    def test_idle_exactly_keep_alive_survives(self):
        pool = WarmPool(WarmPoolConfig(keep_alive_s=10.0))
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        assert not pool.acquire(11.0, 2048.0).cold

    def test_infinite_keep_alive_never_expires(self):
        pool = WarmPool(WarmPoolConfig(keep_alive_s=math.inf))
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 0.0)
        assert not pool.acquire(1e12, 2048.0).cold
        assert pool.stats.expired == 0

    def test_live_and_warm_counts(self):
        pool = WarmPool(WarmPoolConfig(keep_alive_s=5.0))
        a = pool.acquire(0.0, 2048.0)
        pool.acquire(0.0, 2048.0)  # stays busy
        pool.release(a.container_id, 1.0)
        assert pool.live_containers(2.0) == 2
        assert pool.warm_containers(2.0) == 1
        assert pool.warm_containers(2.0, memory_mb=4096.0) == 0
        assert pool.live_containers(20.0) == 1  # the idle one expired


class TestInspectionIsPure:
    """Regression: ``live_containers``/``warm_containers`` used to run the
    expiry sweep, so merely *observing* the pool off the event clock (the
    prewarmer's polling, a dashboard probe) mutated containers, heaps, and
    the ``expired`` counter. Inspection must be side-effect-free."""

    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_counts_leave_state_bit_identical(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(keep_alive_s=5.0))
        a = pool.acquire(0.0, 2048.0)
        b = pool.acquire(0.0, 4096.0)
        pool.release(a.container_id, 1.0)
        pool.release(b.container_id, 2.0)
        before = full_state(pool)
        # Far past every keep-alive: both idle containers are logically
        # expired at t=100 and must be counted out — but not reclaimed.
        assert pool.live_containers(100.0) == 0
        assert pool.warm_containers(100.0) == 0
        assert pool.live_containers(3.0) == 2
        assert pool.warm_containers(3.0) == 2
        assert pool.warm_containers(3.0, memory_mb=2048.0) == 1
        assert full_state(pool) == before
        # Reclamation still happens at the next mutating call.
        pool.acquire(100.0, 2048.0)
        assert pool.stats.expired == 2

    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_expiry_boundary_matches_the_sweep(self, pool_cls):
        # The count uses the same float comparison as the sweep
        # (now - free_at > keep): idle *exactly* keep_alive is still live.
        pool = pool_cls(WarmPoolConfig(keep_alive_s=5.0))
        lease = pool.acquire(0.0, 2048.0)
        pool.release(lease.container_id, 1.0)
        assert pool.live_containers(6.0) == 1
        assert pool.warm_containers(6.0) == 1
        assert pool.live_containers(6.0 + 1e-9) == 0

    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_busy_containers_are_live_at_any_horizon(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(keep_alive_s=1.0))
        pool.acquire(0.0, 2048.0)  # stays busy (free_at = inf)
        assert pool.live_containers(1e12) == 1
        assert pool.warm_containers(1e12) == 0


class TestCapacity:
    def test_exhausted_pool_returns_none(self):
        pool = WarmPool(WarmPoolConfig(max_containers=2))
        pool.acquire(0.0, 2048.0)
        pool.acquire(0.0, 2048.0)
        assert pool.acquire(0.0, 2048.0) is None

    def test_wrong_tier_idle_is_evicted_at_cap(self):
        # A memory reconfiguration turns warm capacity of the old tier into
        # cold starts of the new one.
        pool = WarmPool(WarmPoolConfig(max_containers=1))
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        lease = pool.acquire(2.0, 4096.0)
        assert lease.cold
        assert pool.stats.evicted == 1
        assert pool.live_containers(2.0) == 1

    def test_freed_capacity_reusable_after_none(self):
        pool = WarmPool(WarmPoolConfig(max_containers=1))
        a = pool.acquire(0.0, 2048.0)
        assert pool.acquire(0.5, 2048.0) is None
        pool.release(a.container_id, 1.0)
        assert pool.acquire(1.0, 2048.0) is not None


class TestColdDelay:
    def test_no_model_means_zero_delay(self):
        pool = WarmPool()
        assert pool.cold_delay(2048.0) == 0.0
        assert pool.acquire(0.0, 2048.0).cold_delay == 0.0

    def test_model_delay_is_deterministic_per_tier(self):
        model = ColdStartModel()
        pool = WarmPool(cold_start=model)
        lease = pool.acquire(0.0, 2048.0)
        assert lease.cold_delay == pytest.approx(model.delay(2048.0))
        assert lease.cold_delay > 0.0


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            WarmPoolConfig(keep_alive_s=-1.0)
        with pytest.raises(ValueError):
            WarmPoolConfig(max_containers=0)
        with pytest.raises(ValueError):
            WarmPoolConfig(max_queued_batches=-1)


class TestEdgeCases:
    """PR 5 satellite: the boundary semantics the engine leans on."""

    def test_zero_keep_alive_makes_every_later_start_cold(self):
        # keep_alive_s=0 is "no warm capacity": any time elapsing between
        # release and the next acquire expires the container.
        pool = WarmPool(WarmPoolConfig(keep_alive_s=0.0))
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        b = pool.acquire(1.0 + 1e-9, 2048.0)
        assert b.cold
        assert pool.stats.expired == 1
        pool.release(b.container_id, 2.0)
        c = pool.acquire(3.0, 2048.0)
        assert c.cold
        assert pool.stats.cold_starts == 3
        assert pool.stats.warm_starts == 0

    def test_zero_keep_alive_same_instant_reuse_is_still_warm(self):
        # Expiry is strict (idle > keep_alive_s), so a release and acquire
        # at the same timestamp still reuses — zero idle time has passed.
        pool = WarmPool(WarmPoolConfig(keep_alive_s=0.0))
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 1.0)
        assert not pool.acquire(1.0, 2048.0).cold

    def test_expiry_exactly_at_reuse_time_is_warm(self):
        # now - free_at == keep_alive_s sits inside the window: the
        # boundary belongs to the container, matching the strict `>` in
        # WarmPool._expire.
        pool = WarmPool(WarmPoolConfig(keep_alive_s=10.0))
        a = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 5.0)
        lease = pool.acquire(15.0, 2048.0)
        assert not lease.cold
        assert pool.stats.expired == 0

    def test_eviction_breaks_free_at_ties_by_lowest_id(self):
        # Two idle containers stamped at the same instant: eviction must be
        # deterministic, and the rule is min((free_at, container_id)).
        pool = WarmPool(WarmPoolConfig(max_containers=2))
        a = pool.acquire(0.0, 2048.0)
        b = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 5.0)
        pool.release(b.container_id, 5.0)
        lease = pool.acquire(6.0, 4096.0)  # new tier forces an eviction
        assert lease.cold
        assert pool.stats.evicted == 1
        # The lower id (a) was evicted; b is still present and warm.
        assert pool.warm_containers(6.0, memory_mb=2048.0) == 1
        reused = pool.acquire(6.0, 2048.0)
        assert not reused.cold
        assert reused.container_id == b.container_id

    def test_warm_reuse_breaks_free_at_ties_by_highest_id(self):
        # The MRU pick's mirror rule: max((free_at, container_id)).
        pool = WarmPool()
        a = pool.acquire(0.0, 2048.0)
        b = pool.acquire(0.0, 2048.0)
        pool.release(a.container_id, 5.0)
        pool.release(b.container_id, 5.0)
        assert pool.acquire(6.0, 2048.0).container_id == b.container_id
