"""Checkpoint/restore: the keystone kill-and-resume equivalence.

The contract under test: a run killed at an arbitrary event boundary and
resumed from its latest snapshot (plus journal replay) produces a
:class:`ServingLog` bit-identical to an uninterrupted run — with faults on
and off, across multiple distinct kill points, and even when the restored
leg is itself killed again. Plus the supporting machinery: atomic snapshot
writes, journal round-trips and torn-tail tolerance, fingerprint rejection
of mismatched engines, and replay divergence detection.
"""

import json
import os
import pickle

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.types import Decision
from repro.serverless.faults import FaultModel
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ColdStartModel
from repro.serving import (
    CheckpointError,
    Journal,
    JournalReplayError,
    ServingEngine,
    SimulatedCrash,
    WarmPoolConfig,
    assert_serving_logs_equal,
    journal_path,
    read_snapshot,
    write_snapshot,
)
from repro.serving.checkpoint import SNAPSHOT_FORMAT, jsonable

pytestmark = pytest.mark.serving

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
OTHER = BatchConfig(memory_mb=4096.0, batch_size=16, timeout=0.02)


class FlipFlopChooser:
    """Alternates configs; its mutable call counter is exactly the kind of
    controller state a snapshot must capture for the resume to be exact."""

    def __init__(self):
        self.calls = 0

    def choose(self, history, slo):
        self.calls += 1
        config = OTHER if self.calls % 2 else CONFIG
        return Decision(config=config, decision_time=1e-3,
                        diagnostics={"predicted_p95": 0.08})


def trace(seed=5, n=1200, lam=250.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def build_engine(seed=123, faults=False):
    fault_model = FaultModel(failure_rate=0.2) if faults else None
    platform = ServerlessPlatform(
        cold_start=ColdStartModel(),
        faults=fault_model,
        concurrency_limit=4,
        seed=seed,
    )
    return ServingEngine(
        CONFIG,
        platform=platform,
        chooser=FlipFlopChooser(),
        pool=WarmPoolConfig(keep_alive_s=2.0, max_containers=4,
                            max_queued_batches=2),
        deploy_delay_s=0.25,
        decision_interval_s=0.5,
        min_history=16,
    )


class TestKillRestoreEquivalence:
    """The keystone property, at explicit distinct event boundaries."""

    @pytest.mark.parametrize("faults", [False, True])
    def test_kill_and_restore_is_bit_identical(self, tmp_path, faults):
        ts = trace()
        baseline = build_engine(faults=faults).run(ts, record_trace=True)
        assert baseline.n_events > 900
        # Three distinct boundaries: right after the initial snapshot, deep
        # mid-run between snapshots, and near the end of the run.
        for crash_at in (3, baseline.n_events // 2, baseline.n_events - 5):
            ck = tmp_path / f"faults{faults}-crash{crash_at}.ckpt"
            with pytest.raises(SimulatedCrash):
                build_engine(faults=faults).run(
                    ts, record_trace=True, checkpoint_path=ck,
                    checkpoint_every=64, crash_after_events=crash_at,
                )
            resumed = build_engine(faults=faults).restore(ck)
            assert_serving_logs_equal(baseline, resumed)

    def test_restore_of_a_restored_run(self, tmp_path):
        # The resumed leg checkpoints too, so it can be killed again.
        ts = trace()
        baseline = build_engine().run(ts, record_trace=True)
        ck = tmp_path / "twice.ckpt"
        with pytest.raises(SimulatedCrash):
            build_engine().run(ts, record_trace=True, checkpoint_path=ck,
                               checkpoint_every=64, crash_after_events=300)
        with pytest.raises(SimulatedCrash):
            build_engine().restore(ck, crash_after_events=800)
        resumed = build_engine().restore(ck)
        assert_serving_logs_equal(baseline, resumed)

    def test_checkpointing_does_not_change_the_run(self, tmp_path):
        # Snapshots and the journal are pure observers of the event stream.
        ts = trace()
        plain = build_engine(faults=True).run(ts, record_trace=True)
        observed = build_engine(faults=True).run(
            ts, record_trace=True,
            checkpoint_path=tmp_path / "observer.ckpt", checkpoint_every=128,
        )
        assert_serving_logs_equal(plain, observed)
        assert observed.checkpoints > 1  # it did actually snapshot

    def test_chooser_state_survives_the_crash(self, tmp_path):
        # FlipFlop alternates per *call*: if the restored engine's chooser
        # restarted from zero, every decision after the crash would flip
        # parity and the decision stream would diverge.
        ts = trace()
        baseline = build_engine().run(ts)
        ck = tmp_path / "chooser.ckpt"
        with pytest.raises(SimulatedCrash):
            build_engine().run(ts, checkpoint_path=ck, checkpoint_every=64,
                               crash_after_events=baseline.n_events // 2)
        resumed = build_engine().restore(ck)
        assert [d.config for d in resumed.decisions] == \
            [d.config for d in baseline.decisions]

    def test_journal_records_every_event(self, tmp_path):
        ts = trace(n=400)
        ck = tmp_path / "journal.ckpt"
        log = build_engine().run(ts, record_trace=True, checkpoint_path=ck,
                                 checkpoint_every=64)
        entries = Journal(journal_path(ck)).read()
        assert entries == [jsonable(e) for e in log.event_trace]


class TestRestoreValidation:
    def test_fingerprint_mismatch_is_rejected(self, tmp_path):
        ts = trace(n=400)
        ck = tmp_path / "fp.ckpt"
        with pytest.raises(SimulatedCrash):
            build_engine().run(ts, checkpoint_path=ck, checkpoint_every=32,
                               crash_after_events=100)
        other = build_engine()
        other.slo = 0.2  # differently-configured engine
        with pytest.raises(CheckpointError, match="slo"):
            other.restore(ck)

    def test_missing_snapshot_is_a_clear_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            build_engine().restore(tmp_path / "nope.ckpt")

    def test_wrong_format_is_rejected(self, tmp_path):
        path = tmp_path / "old.ckpt"
        with open(path, "wb") as fh:
            pickle.dump({"format": SNAPSHOT_FORMAT + 1}, fh)
        with pytest.raises(CheckpointError, match="unsupported format"):
            build_engine().restore(path)

    def test_corrupt_snapshot_is_a_clear_error(self, tmp_path):
        path = tmp_path / "torn.ckpt"
        path.write_bytes(b"\x80\x05 definitely not a full pickle")
        with pytest.raises(CheckpointError, match="cannot read"):
            build_engine().restore(path)

    def test_tampered_journal_tail_raises_replay_error(self, tmp_path):
        ts = trace(n=600)
        ck = tmp_path / "tamper.ckpt"
        with pytest.raises(SimulatedCrash):
            build_engine().run(ts, checkpoint_path=ck, checkpoint_every=64,
                               crash_after_events=200)
        jpath = journal_path(ck)
        with open(jpath, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        # Corrupt an entry *after* the snapshot boundary (the replay tail).
        entries = int(read_snapshot(ck)["journal_entries"])
        assert len(lines) > entries
        doctored = json.loads(lines[-1])
        doctored[1] = float(doctored[1]) + 1.0  # shift its timestamp
        lines[-1] = json.dumps(doctored) + "\n"
        with open(jpath, "w", encoding="utf-8") as fh:
            fh.writelines(lines)
        with pytest.raises(JournalReplayError, match="diverged"):
            build_engine().restore(ck)
        # With verification off the same restore succeeds.
        with pytest.raises(SimulatedCrash):
            build_engine().run(ts, checkpoint_path=ck, checkpoint_every=64,
                               crash_after_events=200)
        assert build_engine().restore(ck, verify_journal=False) is not None

    def test_run_rejects_bad_cadence(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            build_engine().run(trace(n=50), checkpoint_every=0)
        with pytest.raises(ValueError, match="crash_after_events"):
            build_engine().run(trace(n=50), crash_after_events=0)


class TestJournal:
    def test_round_trip_is_exact(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = Journal(path).open()
        events = [("arrival", 0.12345678901234567, 0),
                  ("start", 1.5, 3, 8, True, 2048.0, 1.7),
                  ("drift", 2.0, "workload", 0.25)]
        for e in events:
            journal.append(e)
        journal.close()
        assert Journal(path).read() == [jsonable(e) for e in events]

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "torn.journal"
        journal = Journal(path).open()
        journal.append(("arrival", 1.0, 0))
        journal.append(("arrival", 2.0, 1))
        journal.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('["arrival", 3.0')  # the crash-interrupted write
        assert Journal(path).read() == [["arrival", 1.0, 0],
                                        ["arrival", 2.0, 1]]

    def test_truncate_to_keeps_a_prefix(self, tmp_path):
        path = tmp_path / "t.journal"
        journal = Journal(path).open()
        for i in range(5):
            journal.append(("arrival", float(i), i))
        journal.close()
        journal = Journal(path).open(truncate_to=2)
        assert journal.entries == 2
        journal.close()
        assert Journal(path).read() == [["arrival", 0.0, 0],
                                        ["arrival", 1.0, 1]]

    def test_append_requires_open(self, tmp_path):
        with pytest.raises(CheckpointError, match="not open"):
            Journal(tmp_path / "x.journal").append(("arrival", 0.0, 0))


class TestSnapshotFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "s.ckpt"
        write_snapshot(path, {"state": [1, 2, 3]})
        payload = read_snapshot(path)
        assert payload["state"] == [1, 2, 3]
        assert payload["format"] == SNAPSHOT_FORMAT

    def test_write_is_atomic(self, tmp_path):
        # A failed write must leave the previous snapshot untouched and no
        # temp litter behind.
        path = tmp_path / "s.ckpt"
        write_snapshot(path, {"state": "old"})

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("refuses to pickle")

        with pytest.raises(RuntimeError):
            write_snapshot(path, {"state": Unpicklable()})
        assert read_snapshot(path)["state"] == "old"
        assert os.listdir(tmp_path) == ["s.ckpt"]


class TestJsonable:
    def test_numpy_scalars_and_tuples_normalize(self):
        event = ("start", np.float64(1.5), np.int64(3), (np.bool_(True),))
        assert jsonable(event) == ["start", 1.5, 3, [True]]

    def test_floats_survive_json_round_trip_exactly(self):
        values = [0.1 + 0.2, 1e-17, 123456.789012345678, np.pi]
        assert json.loads(json.dumps(jsonable(values))) == values
