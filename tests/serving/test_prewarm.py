"""Predictive warm-pool prewarming (PR 8).

Covers the full stack: the rate forecasters (windowed empirical, NHPP
profile, MAP phase filtering, and the oracle), the Little's-law planning
policy, the pool's ``prewarm``/``retire_idle`` primitives (heap pool ≡
linear reference), the engine's periodic prewarm event (fast ≡ stepwise,
checkpoint-safe, zero footprint when disabled), and the headline
evaluation: on Alibaba-like on-off bursts, predictive prewarming cuts the
cold-start rate by well over 30% versus reactive keep-alive at equal or
lower all-in cost, with the oracle upper bound reported alongside.
"""

import math

import numpy as np
import pytest

from repro.arrival.fitting import fit_map
from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.arrival.stats import interarrivals
from repro.arrival.traces import alibaba_like
from repro.batching.config import BatchConfig
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ColdStartModel
from repro.serving import (
    CheckpointError,
    EmpiricalRateForecaster,
    MAPRateForecaster,
    NHPPRateForecaster,
    OracleForecaster,
    PrewarmConfig,
    PrewarmPolicy,
    ServingEngine,
    WarmPoolConfig,
    assert_serving_logs_equal,
    run_with_crashes,
)
from repro.serving.pool import ReferenceWarmPool, WarmPool
from repro.telemetry.metrics import MetricsRegistry, use_registry

pytestmark = [pytest.mark.serving, pytest.mark.prewarm]

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)


def poisson_trace(seed=5, n=2000, lam=300.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def build_engine(prewarm=None, keep_alive=2.0, seed=0):
    platform = ServerlessPlatform(cold_start=ColdStartModel(), seed=seed)
    return ServingEngine(
        CONFIG,
        platform=platform,
        pool=WarmPoolConfig(keep_alive_s=keep_alive),
        prewarm=prewarm,
    )


# --------------------------------------------------------------- forecasters
class TestEmpiricalForecaster:
    def test_steady_rate_recovered(self):
        gaps = np.full(200, 0.01)  # 100 req/s
        rate = EmpiricalRateForecaster().forecast_rate(gaps, 50.0, 1.0)
        assert rate == pytest.approx(100.0)

    def test_empty_history_is_zero(self):
        assert EmpiricalRateForecaster().forecast_rate(np.empty(0), 0.0, 1.0) == 0.0

    def test_degenerate_span_is_zero(self):
        fc = EmpiricalRateForecaster()
        assert fc.forecast_rate(np.zeros(10), 0.0, 1.0) == 0.0
        assert fc.forecast_rate(np.array([np.inf, 1.0]), 0.0, 1.0) == 0.0


class TestNHPPForecaster:
    def test_constant_profile(self):
        fc = NHPPRateForecaster(rate_fn=lambda t: np.full_like(t, 42.0))
        assert fc.forecast_rate(np.empty(0), 10.0, 5.0) == pytest.approx(42.0)

    def test_ramp_averages_over_horizon(self):
        # λ(t) = t: the mean over [10, 20] is 15, not λ(now) = 10.
        fc = NHPPRateForecaster(rate_fn=lambda t: np.asarray(t, dtype=float))
        assert fc.forecast_rate(np.empty(0), 10.0, 10.0) == pytest.approx(15.0)


class TestMAPForecaster:
    def test_poisson_map_forecasts_its_rate(self):
        fc = MAPRateForecaster(poisson_map(120.0))
        gaps = np.diff(poisson_map(120.0).sample(duration=2.0, seed=1))
        assert fc.forecast_rate(gaps, 2.0, 0.5) == pytest.approx(120.0, rel=1e-6)

    def test_tracks_the_regime(self):
        # MMPP(2) switching between a slow and a fast phase: a run of short
        # gaps must forecast a much higher near-term rate than long gaps.
        process = mmpp2_with_burstiness(100.0, 3.0, 6.0, duty=0.2)
        fc = MAPRateForecaster(process)
        burst = fc.forecast_rate(np.full(40, 1.0 / 400.0), 0.0, 0.25)
        lull = fc.forecast_rate(np.full(40, 1.0), 0.0, 0.25)
        assert burst > 2.0 * lull

    def test_long_horizon_relaxes_to_stationary(self):
        process = mmpp2_with_burstiness(100.0, 3.0, 6.0, duty=0.2)
        fc = MAPRateForecaster(process, grid_points=64)
        short = fc.forecast_rate(np.full(40, 1.0 / 400.0), 0.0, 0.1)
        long = fc.forecast_rate(np.full(40, 1.0 / 400.0), 0.0, 100.0)
        # Conditioned on the burst phase now, the mean rate decays toward
        # the stationary 100 req/s as the horizon stretches.
        assert short > long
        assert long == pytest.approx(100.0, rel=0.1)

    def test_skips_non_finite_gaps(self):
        fc = MAPRateForecaster(poisson_map(50.0))
        dirty = np.array([0.02, np.nan, 0.02, np.inf, 0.02, -1.0])
        assert fc.forecast_rate(dirty, 1.0, 1.0) == pytest.approx(50.0, rel=1e-6)


class TestOracleForecaster:
    def test_counts_the_horizon_exactly(self):
        ts = np.array([0.5, 1.5, 2.5, 3.5, 9.0])
        fc = OracleForecaster(ts)
        # (1.0, 4.0] holds 1.5, 2.5, 3.5 -> 3 arrivals / 3 s.
        assert fc.forecast_rate(np.empty(0), 1.0, 3.0) == pytest.approx(1.0)

    def test_boundaries_are_half_open(self):
        fc = OracleForecaster(np.array([1.0, 2.0]))
        # now itself excluded, now + horizon included.
        assert fc.forecast_rate(np.empty(0), 1.0, 1.0) == pytest.approx(1.0)

    def test_empty_future_is_zero(self):
        fc = OracleForecaster(np.array([1.0]))
        assert fc.forecast_rate(np.empty(0), 5.0, 2.0) == 0.0


# -------------------------------------------------------------------- policy
class TestPrewarmPolicy:
    def policy(self, **kw):
        kw.setdefault("forecaster", EmpiricalRateForecaster())
        return PrewarmPolicy(PrewarmConfig(**kw))

    def test_littles_law_target(self):
        # 400 req/s * 0.02 s / B=8 = 1 container; headroom 3 -> 3.
        p = self.policy(headroom=3.0)
        assert p.target_containers(400.0, 8, 0.02) == 3

    def test_zero_or_bad_rate_targets_zero(self):
        p = self.policy()
        assert p.target_containers(0.0, 8, 0.02) == 0
        assert p.target_containers(math.nan, 8, 0.02) == 0
        assert p.target_containers(math.inf, 8, 0.02) == 0

    def test_plan_provisions_the_deficit(self):
        # Gaps of 0.5 s are float-exact: rate 2.0, target 2*8/2 = 8.
        p = self.policy()
        plan = p.plan(np.full(100, 0.5), 60.0, 1.0,
                      batch_size=2, service_time=8.0, live=3, idle=0)
        assert plan.rate == pytest.approx(2.0)
        assert plan.target == 8
        assert plan.provision == 5  # the deficit over the 3 live
        assert plan.retire == 0

    def test_plan_caps_per_tick(self):
        p = self.policy(max_per_tick=1)
        plan = p.plan(np.full(100, 1.0 / 8000.0), 1.0, 1.0,
                      batch_size=8, service_time=0.02, live=0, idle=0)
        assert plan.target == 20
        assert plan.provision == 1

    def test_retire_only_when_enabled_and_only_idle(self):
        gaps = np.full(100, 1.0)  # ~1 req/s -> target 1
        on = self.policy(retire=True)
        off = self.policy(retire=False)
        args = dict(batch_size=8, service_time=8.0, live=5, idle=2)
        assert on.plan(gaps, 200.0, 1.0, **args).retire == 2  # capped by idle
        assert off.plan(gaps, 200.0, 1.0, **args).retire == 0

    def test_surplus_never_provisions(self):
        p = self.policy()
        plan = p.plan(np.full(100, 1.0), 200.0, 1.0,
                      batch_size=8, service_time=0.02, live=5, idle=5)
        assert plan.provision == 0


class TestPrewarmConfigValidation:
    def test_rejects_bad_values(self):
        fc = EmpiricalRateForecaster()
        with pytest.raises(ValueError, match="forecaster"):
            PrewarmConfig(forecaster=None)
        with pytest.raises(ValueError, match="interval_s"):
            PrewarmConfig(forecaster=fc, interval_s=0.0)
        with pytest.raises(ValueError, match="horizon_s"):
            PrewarmConfig(forecaster=fc, horizon_s=0.0)
        with pytest.raises(ValueError, match="headroom"):
            PrewarmConfig(forecaster=fc, headroom=0.0)
        with pytest.raises(ValueError, match="max_per_tick"):
            PrewarmConfig(forecaster=fc, max_per_tick=0)
        with pytest.raises(ValueError, match="window"):
            PrewarmConfig(forecaster=fc, window=0)

    def test_fingerprint_is_scalar_and_names_the_forecaster(self):
        cfg = PrewarmConfig(forecaster=EmpiricalRateForecaster(),
                            interval_s=0.5, headroom=2.0)
        fp = cfg.fingerprint()
        assert fp[0] == "EmpiricalRateForecaster"
        assert all(isinstance(v, (str, float, int, bool, type(None)))
                   for v in fp)


# ---------------------------------------------------------------------- pool
def pool_state(pool):
    return (
        sorted((c.container_id, c.memory_mb, c.free_at)
               for c in pool._containers.values()),
        (pool.stats.cold_starts, pool.stats.warm_starts, pool.stats.expired,
         pool.stats.evicted, pool.stats.prewarmed, pool.stats.retired),
    )


class TestPoolPrewarm:
    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_prewarmed_containers_grant_warm(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(keep_alive_s=10.0))
        assert pool.prewarm(0.0, 2048.0, 2) == 2
        assert pool.stats.prewarmed == 2
        assert pool.warm_containers(0.0, 2048.0) == 2
        lease = pool.acquire(1.0, 2048.0)
        assert not lease.cold
        assert pool.stats.cold_starts == 0

    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_prewarm_respects_capacity_and_never_evicts(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(max_containers=2, keep_alive_s=10.0))
        a = pool.acquire(0.0, 4096.0)
        pool.release(a.container_id, 0.5)  # idle, evictable by acquire
        assert pool.prewarm(1.0, 2048.0, 5) == 1  # room for exactly one
        assert len(pool._containers) == 2
        assert a.container_id in pool._containers  # not cannibalized

    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_prewarmed_idle_expires_on_schedule(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(keep_alive_s=5.0))
        pool.prewarm(0.0, 2048.0, 1)
        assert pool.acquire(6.0, 2048.0).cold  # idle 6s > 5s: expired
        assert pool.stats.expired == 1

    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_retire_idle_takes_coldest_first_and_spares_busy(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(keep_alive_s=100.0))
        a = pool.acquire(0.0, 2048.0)
        b = pool.acquire(0.0, 2048.0)
        pool.acquire(0.0, 2048.0)  # stays busy
        pool.release(a.container_id, 1.0)
        pool.release(b.container_id, 2.0)
        assert pool.retire_idle(3.0, 2048.0, 1) == 1
        assert a.container_id not in pool._containers  # oldest idle first
        assert b.container_id in pool._containers
        assert pool.retire_idle(3.0, 2048.0, 5) == 1  # only one idle left
        assert pool.stats.retired == 2
        assert pool.live_containers(3.0) == 1  # the busy one is untouched

    @pytest.mark.parametrize("pool_cls", [WarmPool, ReferenceWarmPool])
    def test_retire_ignores_other_tiers(self, pool_cls):
        pool = pool_cls(WarmPoolConfig(keep_alive_s=100.0))
        lease = pool.acquire(0.0, 4096.0)
        pool.release(lease.container_id, 1.0)
        assert pool.retire_idle(2.0, 2048.0, 5) == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_heap_pool_matches_reference_under_churn(self, seed):
        # Randomized acquire/release/prewarm/retire churn: the production
        # heap pool and the linear-scan specification must stay
        # bit-identical in containers and stats.
        rng = np.random.default_rng(seed)
        cfg = WarmPoolConfig(keep_alive_s=3.0, max_containers=12)
        heap_pool, ref_pool = WarmPool(cfg), ReferenceWarmPool(cfg)
        held_heap, held_ref = [], []
        now = 0.0
        tiers = (1024.0, 2048.0)
        for _ in range(2000):
            now += float(rng.exponential(0.3))
            tier = tiers[int(rng.integers(2))]
            roll = rng.random()
            if roll < 0.4:
                a = heap_pool.acquire(now, tier)
                b = ref_pool.acquire(now, tier)
                assert (a is None) == (b is None)
                if a is not None:
                    assert (a.container_id, a.cold) == (b.container_id, b.cold)
                    held_heap.append(a)
                    held_ref.append(b)
            elif roll < 0.6 and held_heap:
                i = int(rng.integers(len(held_heap)))
                heap_pool.release(held_heap.pop(i).container_id, now)
                ref_pool.release(held_ref.pop(i).container_id, now)
            elif roll < 0.8:
                n = int(rng.integers(1, 4))
                assert heap_pool.prewarm(now, tier, n) == \
                    ref_pool.prewarm(now, tier, n)
            else:
                n = int(rng.integers(1, 4))
                assert heap_pool.retire_idle(now, tier, n) == \
                    ref_pool.retire_idle(now, tier, n)
            assert pool_state(heap_pool) == pool_state(ref_pool)


# -------------------------------------------------------------------- engine
class TestEngineIntegration:
    def prewarm_cfg(self, **kw):
        kw.setdefault("forecaster", EmpiricalRateForecaster())
        kw.setdefault("interval_s", 0.25)
        kw.setdefault("headroom", 4.0)
        kw.setdefault("window", 64)
        return PrewarmConfig(**kw)

    def test_run_reports_prewarm_scorecard(self):
        ts = poisson_trace()
        log = build_engine(prewarm=self.prewarm_cfg()).run(ts)
        assert log.prewarm_ticks > 0
        assert log.prewarmed_containers > 0
        assert log.prewarm_cost > 0.0
        assert log.total_cost_with_prewarm == pytest.approx(
            log.total_cost + log.prewarm_cost
        )

    def test_disabled_leaves_zero_footprint(self):
        # Defaults-off runs must look exactly like PR 7: no prewarm events
        # in the trace, all scorecard fields zero, bit-identical reruns.
        ts = poisson_trace()
        a = build_engine().run(ts, record_trace=True)
        b = build_engine().run(ts, record_trace=True)
        assert_serving_logs_equal(a, b)
        assert a.prewarm_ticks == 0
        assert a.prewarmed_containers == 0
        assert a.prewarm_retired == 0
        assert a.prewarm_cost == 0.0
        assert not any(ev[0] == "prewarm" for ev in a.event_trace)

    def test_fast_path_matches_stepwise_with_prewarm(self):
        # Telemetry forces the stepwise loop; without it the fast path
        # runs. Both must dispatch the prewarm ticks identically.
        ts = poisson_trace(seed=8)
        cfg = self.prewarm_cfg(retire=True)
        fast = build_engine(prewarm=cfg).run(ts, record_trace=True)
        with use_registry(MetricsRegistry()):
            slow = build_engine(prewarm=cfg).run(ts, record_trace=True)
        assert_serving_logs_equal(fast, slow)
        assert fast.prewarm_ticks == slow.prewarm_ticks > 0
        assert any(ev[0] == "prewarm" for ev in fast.event_trace)

    def test_prewarm_emits_telemetry_counters(self):
        ts = poisson_trace()
        registry = MetricsRegistry()
        with use_registry(registry):
            log = build_engine(prewarm=self.prewarm_cfg()).run(ts)
        counters = {c["name"]: c["value"] for c in registry.records()
                    if c.get("type") == "counter"}
        assert counters["serving.prewarm.ticks"] == log.prewarm_ticks
        assert counters["serving.prewarm.provisioned"] == log.prewarmed_containers
        assert counters["serving.prewarm.cost"] == pytest.approx(log.prewarm_cost)

    def test_retire_shows_up_in_the_log(self):
        # A steady trace with generous keep-alive accumulates idle
        # containers; retire=True reclaims them ahead of expiry.
        ts = poisson_trace(seed=3)
        cfg = self.prewarm_cfg(headroom=1.0, retire=True)
        log = build_engine(prewarm=cfg, keep_alive=30.0).run(ts)
        assert log.prewarm_retired > 0

    def test_kill_anywhere_restore_is_bit_identical(self, tmp_path):
        # The keystone reliability property must survive prewarming: a run
        # killed at random points and restored from its checkpoint equals
        # the uninterrupted run bit-for-bit.
        ts = poisson_trace(seed=4, n=1200)
        cfg = self.prewarm_cfg(retire=True)

        def factory():
            return build_engine(prewarm=cfg)

        plain = factory().run(ts, record_trace=True)
        crashed, kills = run_with_crashes(
            factory, ts, tmp_path / "pw.ckpt", n_crashes=3, seed=1,
            checkpoint_every=64, record_trace=True,
        )
        assert kills
        assert_serving_logs_equal(plain, crashed)
        assert crashed.prewarmed_containers == plain.prewarmed_containers

    def test_checkpoint_fingerprint_guards_prewarm_config(self, tmp_path):
        # A checkpoint written with prewarming on cannot be resumed by an
        # engine with it off (or differently tuned) — the decision stream
        # would silently diverge.
        ts = poisson_trace(seed=6)
        path = tmp_path / "fp.ckpt"
        build_engine(prewarm=self.prewarm_cfg()).run(
            ts, checkpoint_path=path, checkpoint_every=64
        )
        with pytest.raises(CheckpointError, match="prewarm"):
            build_engine().restore(path)


# ---------------------------------------------------------------- evaluation
class TestAlibabaEvaluation:
    """The headline claim, pinned: on on-off burst traffic, predictive
    prewarming cuts the cold-start rate ≥ 30% versus reactive keep-alive
    at equal or lower all-in cost (request-path spend + provisioning
    spend), and the oracle bound shows most of the remaining gap is
    forecasting error, not irreducible provisioning lag."""

    @pytest.fixture(scope="class")
    def workload(self):
        trace = alibaba_like(seed=2, n_segments=8, segment_duration=30.0,
                             base_rate=100.0)
        cut = 2 * 30.0
        at = int(np.searchsorted(trace.timestamps, cut))
        return trace.timestamps[:at], trace.timestamps[at:]

    def run(self, workload, forecaster=None):
        history, serve_ts = workload
        prewarm = None
        if forecaster is not None:
            prewarm = PrewarmConfig(forecaster=forecaster, interval_s=0.25,
                                    headroom=4.0, window=64)
        return build_engine(prewarm=prewarm).run(serve_ts, history=history)

    def test_predictive_beats_reactive_with_oracle_bound(self, workload):
        history, serve_ts = workload
        reactive = self.run(workload)
        empirical = self.run(workload, EmpiricalRateForecaster())
        fitted, report = fit_map(interarrivals(history))
        fitted_map = self.run(workload, MAPRateForecaster(fitted))
        oracle = self.run(workload, OracleForecaster(serve_ts))

        assert reactive.cold_start_rate > 0.02  # the problem exists

        # >= 30% cold-start reduction for both predictive forecasters...
        for log in (empirical, fitted_map):
            reduction = 1.0 - log.cold_start_rate / reactive.cold_start_rate
            assert reduction >= 0.30
            # ...at equal or lower all-in cost (provisioning included).
            assert log.total_cost_with_prewarm <= reactive.total_cost

        # The fitted MAP knows the regime structure the windowed empirical
        # rate can only chase; it must not do worse.
        assert fitted_map.cold_start_rate <= empirical.cold_start_rate * 1.1

        # Oracle bound: perfect forecasts nearly eliminate cold starts,
        # showing the predictive gap is forecasting error, not lag.
        assert oracle.cold_start_rate <= 0.2 * empirical.cold_start_rate
        assert oracle.total_cost_with_prewarm <= reactive.total_cost

    def test_prewarming_also_helps_the_tail(self, workload):
        # Cold bursts at the front of each on-period are what blow up the
        # p95; prewarming must shrink it, not merely relabel cold starts.
        reactive = self.run(workload)
        empirical = self.run(workload, EmpiricalRateForecaster())
        assert empirical.p(95.0) <= reactive.p(95.0)
