"""Fleet config file schema: load, validate, build, and error paths.

Every rejection must name the *path* of the offending field
(``endpoints[1].slo: must be > 0``) so the CLI's exit-2 message tells
the operator exactly what to fix.
"""

import json
import math

import numpy as np
import pytest

from repro.serving import FleetConfigError, FleetEngine, load_fleet_config
from repro.serving.fleet_config import validate_fleet_config

pytestmark = [pytest.mark.serving, pytest.mark.fleet]


def valid_doc():
    return {
        "max_containers": 6,
        "split_seed": 3,
        "scheduler": {"interval_s": 5.0, "min_history": 16},
        "endpoints": [
            {"name": "chat", "memory_mb": 2048, "batch_size": 8,
             "timeout": 0.05, "slo": 0.15, "share": 0.7},
            {"name": "embed", "memory_mb": 1024, "batch_size": 16,
             "timeout": 0.02, "slo": 0.05, "share": 0.3,
             "chooser": "batch", "decision_interval_s": 10.0,
             "keep_alive_s": 30.0, "max_containers": 2,
             "max_queued_batches": 4},
        ],
    }


def write(tmp_path, doc):
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(doc))
    return path


class TestLoadAndBuild:
    def test_valid_document_round_trips(self, tmp_path):
        cfg = load_fleet_config(write(tmp_path, valid_doc()))
        assert [ep.name for ep in cfg.endpoints] == ["chat", "embed"]
        assert cfg.max_containers == 6
        assert cfg.split_seed == 3
        assert cfg.scheduler_interval_s == 5.0
        assert cfg.scheduler_min_history == 16
        chat, embed = cfg.endpoints
        assert chat.memory_mb == 2048.0 and chat.batch_size == 8
        assert chat.keep_alive_s == math.inf  # default: never expire
        assert embed.chooser == "batch"
        assert embed.max_queued_batches == 4

    def test_build_produces_runnable_engine(self, tmp_path):
        cfg = load_fleet_config(write(tmp_path, valid_doc()))
        engine = cfg.build()
        assert isinstance(engine, FleetEngine)
        rng = np.random.default_rng(0)
        ts = np.cumsum(rng.exponential(1 / 200.0, size=400))
        log = engine.run(ts)  # shares route the single trace
        assert log.n_requests == 400
        assert set(log.endpoints) == {"chat", "embed"}

    def test_build_invokes_factories(self, tmp_path):
        cfg = load_fleet_config(write(tmp_path, valid_doc()))
        seen_platforms, seen_choosers = [], []

        def platform_factory(ep):
            seen_platforms.append(ep.name)
            return None

        def chooser_factory(ep, platform):
            seen_choosers.append(ep.chooser)
            return None

        cfg.build(platform_factory=platform_factory,
                  chooser_factory=chooser_factory)
        assert seen_platforms == ["chat", "embed"]
        assert seen_choosers == ["batch"]  # "none" endpoints skipped

    def test_prewarm_round_trips(self, tmp_path):
        doc = valid_doc()
        doc["endpoints"][0]["prewarm"] = {"interval_s": 0.5, "headroom": 2.0,
                                          "window": 32, "retire": True}
        cfg = load_fleet_config(write(tmp_path, doc))
        pw = cfg.endpoints[0].prewarm
        assert pw is not None
        assert pw.interval_s == 0.5 and pw.headroom == 2.0
        assert pw.window == 32 and pw.retire is True
        assert pw.horizon_s is None and pw.max_per_tick is None
        # JSON cannot name a fitted arrival model: always empirical.
        assert type(pw.forecaster).__name__ == "EmpiricalRateForecaster"
        assert cfg.endpoints[1].prewarm is None

    def test_prewarm_defaults(self, tmp_path):
        doc = valid_doc()
        doc["endpoints"][1]["prewarm"] = {}
        cfg = load_fleet_config(write(tmp_path, doc))
        pw = cfg.endpoints[1].prewarm
        assert pw.interval_s == 1.0 and pw.headroom == 1.0
        assert pw.window == 256 and pw.retire is False

    def test_build_threads_prewarm_to_spec(self, tmp_path):
        doc = valid_doc()
        doc["endpoints"][0]["prewarm"] = {"interval_s": 0.5}
        cfg = load_fleet_config(write(tmp_path, doc))
        engine = cfg.build()
        by_name = {spec.name: spec for spec in engine.endpoints}
        assert by_name["chat"].prewarm is cfg.endpoints[0].prewarm
        assert by_name["embed"].prewarm is None

    def test_minimal_document(self, tmp_path):
        doc = {"endpoints": [{"name": "solo", "memory_mb": 1024,
                              "batch_size": 4, "timeout": 0.0}]}
        cfg = load_fleet_config(write(tmp_path, doc))
        assert cfg.max_containers is None
        assert cfg.scheduler_interval_s is None
        assert cfg.endpoints[0].slo == 0.1


class TestFileErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FleetConfigError, match="cannot read"):
            load_fleet_config(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(FleetConfigError, match="not valid JSON"):
            load_fleet_config(path)


class TestSchemaErrors:
    def reject(self, doc, pattern):
        with pytest.raises(FleetConfigError, match=pattern):
            validate_fleet_config(doc)

    def test_non_object_document(self):
        self.reject([1, 2], "must be a JSON object")

    def test_missing_endpoints(self):
        self.reject({}, "endpoints: is required")
        self.reject({"endpoints": []}, "non-empty array")

    def test_unknown_top_level_key(self):
        doc = valid_doc()
        doc["max_continers"] = 3  # typo must not become a silent no-op
        self.reject(doc, r"unknown keys \['max_continers'\]")

    def test_missing_endpoint_name(self):
        doc = valid_doc()
        del doc["endpoints"][1]["name"]
        self.reject(doc, r"endpoints\[1\]\.name: is required")

    def test_dotted_endpoint_name(self):
        doc = valid_doc()
        doc["endpoints"][0]["name"] = "a.b"
        self.reject(doc, r"endpoints\[0\]\.name: must not contain")

    def test_bad_batch_size(self):
        doc = valid_doc()
        doc["endpoints"][0]["batch_size"] = 0
        self.reject(doc, r"endpoints\[0\]\.batch_size: must be >= 1")
        doc["endpoints"][0]["batch_size"] = 2.5
        self.reject(doc, r"endpoints\[0\]\.batch_size: must be an integer")
        doc["endpoints"][0]["batch_size"] = True  # bools are not integers
        self.reject(doc, r"endpoints\[0\]\.batch_size: must be an integer")

    def test_bad_numbers(self):
        doc = valid_doc()
        doc["endpoints"][0]["slo"] = 0
        self.reject(doc, r"endpoints\[0\]\.slo: must be > 0")
        doc = valid_doc()
        doc["endpoints"][0]["memory_mb"] = "big"
        self.reject(doc, r"endpoints\[0\]\.memory_mb: must be a number")
        doc = valid_doc()
        doc["endpoints"][0]["timeout"] = float("nan")
        self.reject(doc, r"endpoints\[0\]\.timeout: must be finite")

    def test_percentile_over_100(self):
        doc = valid_doc()
        doc["endpoints"][1]["percentile"] = 101
        self.reject(doc, "percentile must be <= 100.*embed")

    def test_unknown_chooser(self):
        doc = valid_doc()
        doc["endpoints"][0]["chooser"] = "magic"
        self.reject(doc, r"endpoints\[0\]\.chooser: must be one of")

    def test_duplicate_names(self):
        doc = valid_doc()
        doc["endpoints"][1]["name"] = "chat"
        self.reject(doc, "names must be unique.*chat")

    def test_mixed_shares(self):
        doc = valid_doc()
        del doc["endpoints"][1]["share"]
        self.reject(doc, "every endpoint has a share or none.*embed")

    def test_share_out_of_range(self):
        doc = valid_doc()
        doc["endpoints"][0]["share"] = 1.5
        self.reject(doc, r"endpoints\[0\]\.share: must be <= 1")
        doc["endpoints"][0]["share"] = 0
        self.reject(doc, r"endpoints\[0\]\.share: must be > 0")

    def test_bad_scheduler(self):
        doc = valid_doc()
        doc["scheduler"] = "fast"
        self.reject(doc, "scheduler: must be an object")
        doc["scheduler"] = {"interval_s": 0}
        self.reject(doc, r"scheduler\.interval_s: must be > 0")
        doc["scheduler"] = {"cadence": 5}
        self.reject(doc, r"scheduler: unknown keys \['cadence'\]")
        doc["scheduler"] = {}
        self.reject(doc, r"scheduler\.interval_s: is required")

    def test_bad_max_containers(self):
        doc = valid_doc()
        doc["max_containers"] = 0
        self.reject(doc, "max_containers: must be >= 1")

    def test_bad_prewarm(self):
        doc = valid_doc()
        doc["endpoints"][0]["prewarm"] = "fast"
        self.reject(doc, r"endpoints\[0\]\.prewarm: must be an object")
        doc["endpoints"][0]["prewarm"] = {"interval_s": 0}
        self.reject(doc, r"endpoints\[0\]\.prewarm\.interval_s: must be > 0")
        doc["endpoints"][0]["prewarm"] = {"retire": 1}
        self.reject(doc, r"endpoints\[0\]\.prewarm\.retire: must be a boolean")
        doc["endpoints"][0]["prewarm"] = {"window": 0}
        self.reject(doc, r"endpoints\[0\]\.prewarm\.window: must be >= 1")
        doc["endpoints"][0]["prewarm"] = {"cadence": 5}
        self.reject(doc,
                    r"endpoints\[0\]\.prewarm: unknown keys \['cadence'\]")

    def test_unknown_endpoint_key(self):
        doc = valid_doc()
        doc["endpoints"][0]["qps_limit"] = 10
        self.reject(doc, r"endpoints\[0\]: unknown keys \['qps_limit'\]")
