"""Heap-merged fleet loop ≡ scan-every-lane specification, bit-for-bit.

The speed pass replaced the fleet's O(lanes)-per-event selection scan with
a lane-key heap (:meth:`FleetEngine._drive_lanes`); the original loop is
kept verbatim as :meth:`FleetEngine._drive_lanes_scan`. These tests run
both over the same fleets — shared budget, per-lane choosers, faults, and
scheduler ticks — and require identical logs, event traces included.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.types import Decision
from repro.serverless.faults import FaultModel
from repro.serverless.platform import ServerlessPlatform
from repro.serving import ServingLog, WarmPoolConfig
from repro.serving.fleet import EndpointSpec, FleetEngine, FleetScheduler

pytestmark = pytest.mark.fleet

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
OTHER = BatchConfig(memory_mb=1024.0, batch_size=4, timeout=0.02)


class _ScanFleet(FleetEngine):
    _scan_lanes = True


class StubChooser:
    def __init__(self, configs):
        self.configs = list(configs)
        self.calls = 0

    def choose(self, history, slo):
        config = self.configs[min(self.calls, len(self.configs) - 1)]
        self.calls += 1
        return Decision(config=config, decision_time=1e-3)


def poisson_trace(lam, n, seed):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def assert_logs_identical(a: ServingLog, b: ServingLog):
    np.testing.assert_array_equal(a.latencies, b.latencies)
    np.testing.assert_array_equal(a.shed, b.shed)
    np.testing.assert_array_equal(a.failed, b.failed)
    np.testing.assert_array_equal(a.dispatch_times, b.dispatch_times)
    np.testing.assert_array_equal(a.batch_costs, b.batch_costs)
    np.testing.assert_array_equal(a.batch_sizes, b.batch_sizes)
    assert a.event_trace == b.event_trace
    assert a.n_events == b.n_events
    assert len(a.decisions) == len(b.decisions)
    assert (a.cold_starts, a.warm_starts, a.expired_containers,
            a.evicted_containers, a.n_retries, a.n_failed) == (
        b.cold_starts, b.warm_starts, b.expired_containers,
        b.evicted_containers, b.n_retries, b.n_failed)


def make_specs(faults=False, choosers=False):
    def platform(seed):
        return ServerlessPlatform(
            faults=FaultModel(failure_rate=0.15) if faults else None,
            seed=seed,
        )

    return [
        EndpointSpec(
            name=f"ep{i}",
            config=CONFIG if i % 2 else OTHER,
            slo=0.1 * (1 + i),
            platform=platform(seed=10 + i),
            chooser=StubChooser([OTHER, CONFIG]) if choosers else None,
            decision_interval_s=0.5 if choosers else None,
            min_history=16,
            pool=WarmPoolConfig(keep_alive_s=2.0, max_containers=4,
                                max_queued_batches=3),
        )
        for i in range(4)
    ]


def make_traffic(seed0=20, lam=150.0, n=900):
    return {
        f"ep{i}": poisson_trace(lam, n, seed=seed0 + i) for i in range(4)
    }


def compare(fleet_kwargs, faults=False, choosers=False):
    traffic = make_traffic()
    heap_log = FleetEngine(
        make_specs(faults, choosers), **fleet_kwargs
    ).run(traffic, record_trace=True)
    scan_log = _ScanFleet(
        make_specs(faults, choosers), **fleet_kwargs
    ).run(traffic, record_trace=True)
    assert heap_log.fleet_decisions == scan_log.fleet_decisions
    for name in heap_log.endpoints:
        assert_logs_identical(heap_log[name], scan_log[name])
    return heap_log


class TestHeapEqualsScan:
    def test_independent_lanes(self):
        compare({})

    def test_with_faults_and_choosers(self):
        compare({}, faults=True, choosers=True)

    def test_with_binding_budget(self):
        # A tight shared budget exercises the cross-lane drain pass, whose
        # changed-lane set feeds the heap's re-keying.
        log = compare({"max_containers": 3}, faults=True)
        assert sum(log[n].evicted_containers for n in log.endpoints) > 0

    def test_with_scheduler_ticks(self):
        scheduler = FleetScheduler(
            memories=(1024.0, 2048.0), batch_sizes=(1, 2, 4, 8),
            timeouts=(0.0, 0.02, 0.05), min_history=32,
        )
        log = compare({
            "scheduler": scheduler, "scheduler_interval_s": 2.0,
        })
        assert log.fleet_decisions >= 1
