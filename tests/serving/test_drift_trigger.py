"""Drift-triggered re-decisions, reconfiguration lag, and retraining.

Satellite of the serving runtime: :class:`WorkloadDriftDetector` and
:func:`prediction_drift` finally have a live consumer — the engine fires an
out-of-band ``DecisionTick`` when either detector trips, applies the new
configuration after the deploy lag, and (optionally) refits the drift
envelope after a simulated retrain.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.drift import WorkloadDriftDetector
from repro.core.types import Decision
from repro.serverless.platform import ServerlessPlatform
from repro.serving import DriftConfig, PredictionDriftConfig, ServingEngine

pytestmark = pytest.mark.serving

CALM = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
AGGRESSIVE = BatchConfig(memory_mb=4096.0, batch_size=32, timeout=0.02)


class StubChooser:
    """Deterministic chooser: replays a configuration sequence and records
    every invocation (the engine passes only history + SLO, so the reason
    is asserted via the log's ServingDecision records)."""

    def __init__(self, configs, predicted_p95=None):
        self.configs = list(configs)
        self.predicted_p95 = predicted_p95
        self.calls = 0

    def choose(self, history, slo):
        config = self.configs[min(self.calls, len(self.configs) - 1)]
        self.calls += 1
        diagnostics = {}
        if self.predicted_p95 is not None:
            diagnostics["predicted_p95"] = self.predicted_p95
        return Decision(config=config, decision_time=1e-3,
                        diagnostics=diagnostics or None)


def poisson(lam, n, seed, t0=0.0):
    rng = np.random.default_rng(seed)
    return t0 + np.cumsum(rng.exponential(1.0 / lam, size=n))


def fitted_detector(lam=50.0, window=32):
    warmup = np.diff(poisson(lam, 3000, seed=10))
    return WorkloadDriftDetector().fit(warmup, window), window


class TestWorkloadDriftTrigger:
    def test_rate_shift_fires_trigger_and_redecision(self):
        detector, window = fitted_detector(lam=50.0)
        # Live traffic at 40x the training rate: far outside the envelope.
        ts = poisson(2000.0, 3000, seed=11)
        chooser = StubChooser([CALM, AGGRESSIVE])
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=chooser,
            drift=DriftConfig(detector=detector, window=window,
                              check_every=32, cooldown_s=0.05),
            min_history=16,
        ).run(ts)
        assert log.drift_triggers >= 1
        drift_decisions = [d for d in log.decisions if d.reason == "drift"]
        assert drift_decisions
        assert chooser.calls == len(log.decisions)

    def test_in_distribution_traffic_stays_quiet(self):
        # Same process, new draws. An envelope detector has a nonzero
        # false-positive rate, so the seed is pinned to a draw that stays
        # inside the fitted band for the whole run.
        detector, window = fitted_detector(lam=50.0)
        ts = poisson(50.0, 2000, seed=14)
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=StubChooser([CALM]),
            drift=DriftConfig(detector=detector, window=window,
                              check_every=32),
        ).run(ts)
        assert log.drift_triggers == 0
        assert all(d.reason != "drift" for d in log.decisions)

    def test_cooldown_bounds_trigger_count(self):
        detector, window = fitted_detector(lam=50.0)
        ts = poisson(2000.0, 4000, seed=13)
        span = ts[-1] - ts[0]
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=StubChooser([CALM]),
            drift=DriftConfig(detector=detector, window=window,
                              check_every=32,
                              cooldown_s=10 * span),  # one trigger per run
        ).run(ts)
        assert log.drift_triggers == 1

    def test_retrain_refits_envelope_and_calls_hook(self):
        detector, window = fitted_detector(lam=50.0)
        lo_before = detector.lo_.copy()
        ts = poisson(2000.0, 4000, seed=14)
        seen = []
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=StubChooser([CALM]),
            drift=DriftConfig(detector=detector, window=window,
                              check_every=32, cooldown_s=1e9,
                              retrain_delay_s=0.2, on_retrain=seen.append),
        ).run(ts)
        assert log.retrains == 1
        assert len(seen) == 1 and seen[0].size > 0
        # The envelope was refit on the drifted traffic...
        assert not np.array_equal(detector.lo_, lo_before)
        # ...and now accepts it.
        assert not detector.is_drifted(np.diff(ts[-(window + 1):]))


class TestPredictionDriftTrigger:
    def test_bogus_prediction_fires_trigger(self):
        # The chooser predicts an absurd 0.1 ms p95; observed latency is
        # orders of magnitude higher, so the relative error blows through
        # tolerance x baseline.
        ts = poisson(300.0, 2500, seed=15)
        chooser = StubChooser([AGGRESSIVE], predicted_p95=1e-4)
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=chooser,
            decision_interval_s=0.5,
            deploy_delay_s=0.0,
            drift=DriftConfig(check_every=32, cooldown_s=0.1),
            min_history=16,
            prediction=PredictionDriftConfig(baseline_error=0.1,
                                             min_samples=32),
        ).run(ts)
        assert log.prediction_drift_triggers >= 1
        assert any(d.reason == "prediction-drift" for d in log.decisions)

    def test_accurate_prediction_stays_quiet(self):
        ts = poisson(300.0, 1500, seed=16)
        # First run measures the true p95 under the deployed config...
        probe = ServingEngine(CALM, platform=ServerlessPlatform()).run(ts)
        truth = probe.p(95.0)
        # ...then a chooser that offers no prediction must not trigger.
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=StubChooser([AGGRESSIVE], predicted_p95=None),
            decision_interval_s=0.5,
            prediction=PredictionDriftConfig(baseline_error=0.1,
                                             min_samples=32),
        ).run(ts)
        assert log.prediction_drift_triggers == 0
        assert truth > 0.0


class TestReconfigurationLag:
    def test_new_config_applies_after_deploy_delay(self):
        ts = poisson(300.0, 2000, seed=17)
        delay = 1.5
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=StubChooser([AGGRESSIVE]),
            decision_interval_s=1.0,
            deploy_delay_s=delay,
            min_history=16,
        ).run(ts)
        assert log.reconfigurations == 1
        applied = [d for d in log.decisions if d.applied_at is not None]
        assert len(applied) == 1
        d = applied[0]
        assert d.applied_at == pytest.approx(d.time + delay)
        # Batches dispatched before the switch ran under the old memory
        # tier; after it, under the new one.
        before = log.batch_memory[log.dispatch_times < d.applied_at]
        after = log.batch_memory[log.dispatch_times >= d.applied_at]
        assert np.all(before == CALM.memory_mb)
        assert after.size > 0 and np.all(after == AGGRESSIVE.memory_mb)

    def test_newer_decision_supersedes_pending_one(self):
        # Two different configs decided within one deploy window: only the
        # later one may take effect.
        ts = poisson(300.0, 2000, seed=18)
        other = BatchConfig(memory_mb=1024.0, batch_size=4, timeout=0.1)
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=StubChooser([other, AGGRESSIVE]),
            decision_interval_s=0.5,
            deploy_delay_s=2.0,
            min_history=16,
        ).run(ts)
        assert len(log.decisions) >= 2
        assert log.reconfigurations == 1
        assert log.decisions[0].applied_at is None
        assert log.batch_memory[-1] == AGGRESSIVE.memory_mb
        assert not np.any(log.batch_memory == other.memory_mb)

    def test_static_chooser_never_reconfigures(self):
        ts = poisson(300.0, 1000, seed=19)
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=StubChooser([CALM]),
            decision_interval_s=0.5,
            min_history=16,
        ).run(ts)
        assert len(log.decisions) >= 1
        assert log.reconfigurations == 0
        assert all(d.applied_at is None for d in log.decisions)

    def test_crashing_chooser_keeps_serving(self):
        class Crasher:
            def choose(self, history, slo):
                raise RuntimeError("no fallback available")

        ts = poisson(300.0, 1000, seed=20)
        log = ServingEngine(
            CALM,
            platform=ServerlessPlatform(),
            chooser=Crasher(),
            decision_interval_s=0.5,
            min_history=16,
        ).run(ts)
        assert log.n_served == ts.size
        assert len(log.decisions) == 0
        assert log.reconfigurations == 0
