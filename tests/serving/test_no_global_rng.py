"""Lint: the serving layer must never touch NumPy's global RNG.

Checkpoint/restore snapshots the *platform's* bit-generator state; any code
in ``src/repro/serving/`` drawing from ``np.random``'s module-level
generator (``np.random.random``, ``np.random.seed``, legacy ``RandomState``
helpers, …) would be invisible to that snapshot and silently break the
bit-identical-resume guarantee. Explicit generator construction
(``default_rng``, ``Generator``, ``SeedSequence``, ``PCG64`` & co.) is
fine — those are seeded, owned objects the engine can persist.
"""

import re
from pathlib import Path

import pytest

pytestmark = pytest.mark.serving

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
SERVING_DIR = SRC / "serving"

#: Modules outside ``serving/`` that the engine's determinism guarantees
#: lean on just as hard: the continuous-batching state machine and the
#: token length/timing models (PR 9). Their randomness must be explicit
#: per-request SeedSequence children, never global state.
EXTRA_FILES = (
    SRC / "batching" / "continuous.py",
    SRC / "serverless" / "generation.py",
    SRC / "serverless" / "outages.py",
)

#: Explicit-generator constructors that are allowed through.
ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox",
           "SFC64", "MT19937", "BitGenerator"}

GLOBAL_RNG = re.compile(r"\bnp\.random\.(\w+)")


def test_fleet_modules_are_in_scope():
    """The sweep must cover the PR-6 fleet layer — ``split_by_shares``
    draws from an explicit generator, and only this glob keeps it so —
    and the PR-8 prewarming module, whose forecasters must stay
    deterministic functions of the observed history — and the PR-9
    generation config schema (``serving/generation.py``) rides along in
    the same glob — as does the PR-10 degradation stack
    (``serving/degrade.py``), whose backoff schedules and hedge delays
    must come from engine-owned generators only."""
    names = {p.name for p in SERVING_DIR.glob("*.py")}
    assert {"fleet.py", "fleet_config.py", "prewarm.py", "generation.py",
            "degrade.py"} <= names
    for extra in EXTRA_FILES:
        assert extra.is_file(), f"missing {extra}"


def test_serving_layer_has_no_global_rng_calls():
    assert SERVING_DIR.is_dir(), f"missing {SERVING_DIR}"
    offenders = []
    for path in sorted(SERVING_DIR.glob("*.py")) + list(EXTRA_FILES):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for match in GLOBAL_RNG.finditer(line):
                if match.group(1) not in ALLOWED:
                    offenders.append(
                        f"{path.name}:{lineno}: np.random.{match.group(1)}"
                    )
    assert not offenders, (
        "global NumPy RNG use in src/repro/serving/ breaks checkpoint "
        "determinism:\n" + "\n".join(offenders)
    )
