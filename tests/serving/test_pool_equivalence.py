"""Heap-backed :class:`WarmPool` ≡ linear-scan :class:`ReferenceWarmPool`.

The speed pass rebuilt the pool's expiry, MRU reuse, and capacity eviction
on heaps with lazy invalidation; the original linear implementation is kept
in-tree as the executable specification. These tests drive both through
identical operation sequences — randomized churn, expiry boundaries,
eviction tie-breaks, and fleet-budget cross-tenant eviction — and assert
bit-identical observable behaviour: leases, stats, and container sets.
"""

import math

import numpy as np
import pytest

from repro.serving.fleet import FleetBudget
from repro.serving.pool import ReferenceWarmPool, WarmPool, WarmPoolConfig

pytestmark = pytest.mark.serving

TIERS = (512.0, 1024.0, 2048.0, 4096.0)


def snapshot(pool):
    """Every observable of a pool: containers (id, tier, free_at) + stats."""
    return (
        sorted(
            (c.container_id, c.memory_mb, c.free_at)
            for c in pool._containers.values()
        ),
        (pool.stats.cold_starts, pool.stats.warm_starts,
         pool.stats.expired, pool.stats.evicted),
    )


def drive_both(config, script):
    """Run one op script against both implementations, asserting identical
    leases at every step; returns the two pools for final inspection."""
    heap_pool, ref_pool = WarmPool(config), ReferenceWarmPool(config)
    for step, (op, *args) in enumerate(script):
        if op == "acquire":
            now, tier = args
            a = heap_pool.acquire(now, tier)
            b = ref_pool.acquire(now, tier)
            assert (a is None) == (b is None), f"step {step}: grant mismatch"
            if a is not None:
                assert (a.container_id, a.cold, a.cold_delay) == (
                    b.container_id, b.cold, b.cold_delay
                ), f"step {step}: lease mismatch"
        elif op == "release":
            cid, now = args
            heap_pool.release(cid, now)
            ref_pool.release(cid, now)
        elif op == "inspect":
            (now,) = args
            assert heap_pool.live_containers(now) == ref_pool.live_containers(now)
            assert heap_pool.warm_containers(now) == ref_pool.warm_containers(now)
    assert snapshot(heap_pool) == snapshot(ref_pool)
    return heap_pool, ref_pool


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_mixed_churn(self, seed):
        rng = np.random.default_rng(seed)
        config = WarmPoolConfig(keep_alive_s=5.0, max_containers=8)
        script = []
        held = []
        now = 0.0
        for _ in range(3000):
            now += float(rng.exponential(0.5))
            roll = rng.random()
            if roll < 0.55:
                tier = TIERS[int(rng.integers(len(TIERS)))]
                script.append(("acquire", now, tier))
                held.append(len(script) - 1)
            elif roll < 0.9 and held:
                held.pop(int(rng.integers(len(held))))
                script.append(("release", None, now))
            else:
                script.append(("inspect", now))

        # Replay against both pools, resolving release targets from the
        # actual lease each implementation granted (they must agree anyway).
        heap_pool, ref_pool = WarmPool(config), ReferenceWarmPool(config)
        heap_leases, ref_leases = {}, {}
        for idx, (op, *args) in enumerate(script):
            if op == "acquire":
                t, tier = args
                a, b = heap_pool.acquire(t, tier), ref_pool.acquire(t, tier)
                assert (a is None) == (b is None)
                if a is not None:
                    assert a.container_id == b.container_id
                    assert a.cold == b.cold
                    heap_leases[idx], ref_leases[idx] = a, b
            elif op == "release":
                _, t = args
                if heap_leases:
                    k = next(iter(heap_leases))
                    heap_pool.release(heap_leases.pop(k).container_id, t)
                    ref_pool.release(ref_leases.pop(k).container_id, t)
            else:
                (t,) = args
                assert heap_pool.live_containers(t) == ref_pool.live_containers(t)
                assert heap_pool.warm_containers(t) == ref_pool.warm_containers(t)
        assert snapshot(heap_pool) == snapshot(ref_pool)


class TestExpiryBoundary:
    def test_idle_exactly_keep_alive_is_not_expired(self):
        # Expiry fires strictly after keep_alive: now - free_at > keep.
        config = WarmPoolConfig(keep_alive_s=5.0)
        script = [
            ("acquire", 0.0, 2048.0),
            ("release", 0, 1.0),
            ("inspect", 6.0),       # idle exactly 5.0 — still warm
            ("acquire", 6.0, 2048.0),
        ]
        heap_pool, ref_pool = drive_both(config, script)
        assert heap_pool.stats.warm_starts == 1
        assert heap_pool.stats.expired == 0

    def test_just_past_keep_alive_is_expired(self):
        config = WarmPoolConfig(keep_alive_s=5.0)
        script = [
            ("acquire", 0.0, 2048.0),
            ("release", 0, 1.0),
            ("inspect", 6.0 + 1e-9),
            ("acquire", 6.0 + 1e-9, 2048.0),  # cold again
        ]
        heap_pool, ref_pool = drive_both(config, script)
        assert heap_pool.stats.expired == 1
        assert heap_pool.stats.cold_starts == 2

    def test_rereleased_container_outlives_stale_heap_entry(self):
        # A container released, reused warm, and released again must be
        # expired off its *latest* free_at, not the orphaned older entry.
        config = WarmPoolConfig(keep_alive_s=5.0)
        script = [
            ("acquire", 0.0, 2048.0),
            ("release", 0, 1.0),
            ("acquire", 2.0, 2048.0),   # warm reuse; entry at 1.0 goes stale
            ("release", 0, 8.0),
            ("inspect", 7.0),           # stale 1.0 entry would expire here
            ("acquire", 12.0, 2048.0),  # idle 4.0 < keep — warm
        ]
        heap_pool, ref_pool = drive_both(config, script)
        assert heap_pool.stats.warm_starts == 2
        assert heap_pool.stats.expired == 0


class TestCapacityEviction:
    def test_oldest_idle_evicted_first(self):
        config = WarmPoolConfig(max_containers=2)
        script = [
            ("acquire", 0.0, 512.0),    # cid 0
            ("acquire", 0.0, 512.0),    # cid 1
            ("release", 0, 1.0),
            ("release", 1, 2.0),
            ("acquire", 3.0, 4096.0),   # full: evicts cid 0 (oldest idle)
        ]
        heap_pool, ref_pool = drive_both(config, script)
        assert heap_pool.stats.evicted == 1
        assert 0 not in heap_pool._containers
        assert 1 in heap_pool._containers

    def test_eviction_tie_breaks_on_container_id(self):
        config = WarmPoolConfig(max_containers=2)
        script = [
            ("acquire", 0.0, 512.0),
            ("acquire", 0.0, 512.0),
            ("release", 1, 1.0),
            ("release", 0, 1.0),        # identical free_at
            ("acquire", 2.0, 4096.0),   # tie → lowest container id evicted
        ]
        heap_pool, ref_pool = drive_both(config, script)
        assert 0 not in heap_pool._containers
        assert 1 in heap_pool._containers

    def test_mru_tie_breaks_on_highest_id(self):
        config = WarmPoolConfig()
        script = [
            ("acquire", 0.0, 2048.0),
            ("acquire", 0.0, 2048.0),
            ("release", 0, 1.0),
            ("release", 1, 1.0),        # identical free_at
            ("acquire", 2.0, 2048.0),   # MRU tie → highest container id
        ]
        heap_pool, ref_pool = drive_both(config, script)
        # Both picked the same container; pin which one the spec picks.
        grant = heap_pool.acquire(2.0, 2048.0)  # the remaining warm one
        assert grant.container_id == 0

    def test_all_busy_full_pool_denies(self):
        config = WarmPoolConfig(max_containers=2)
        script = [
            ("acquire", 0.0, 512.0),
            ("acquire", 0.0, 512.0),
            ("acquire", 1.0, 512.0),    # both busy → None from both pools
        ]
        drive_both(config, script)


class _BudgetedHeap(WarmPool):
    def __init__(self, config, budget):
        super().__init__(config)
        self.budget = budget
        budget.register(self)

    def _admit_cold(self, now):
        return self.budget.admit_cold(now)


class _BudgetedRef(ReferenceWarmPool):
    def __init__(self, config, budget):
        super().__init__(config)
        self.budget = budget
        budget.register(self)

    def _admit_cold(self, now):
        return self.budget.admit_cold(now)


class TestFleetBudgetCrossTenantEviction:
    """The fleet budget reaches *into* pools to evict the globally
    least-recently-freed idle container. For the heap pool that deletion
    bypasses the heaps entirely — lazy invalidation must absorb it."""

    def _drive(self, pool_cls):
        budget = FleetBudget(max_containers=2)
        cfg = WarmPoolConfig(keep_alive_s=math.inf)
        a = pool_cls(cfg, budget)
        b = pool_cls(cfg, budget)
        trail = []

        def acq(pool, tag, now, tier):
            lease = pool.acquire(now, tier)
            trail.append((tag, None if lease is None
                          else (lease.container_id, lease.cold)))
            return lease

        la = acq(a, "a", 0.0, 512.0)   # fleet: 1 live
        lb = acq(b, "b", 0.0, 1024.0)  # fleet: 2 live (at cap)
        a.release(la.container_id, 1.0)
        b.release(lb.container_id, 3.0)
        # At the cap with two idle fleet-wide (a@1.0 older than b@3.0): a
        # cold start in b must evict tenant *a*'s container, the global
        # least-recently-freed victim.
        lease = acq(b, "b", 4.0, 2048.0)
        assert lease is not None and lease.cold
        acq(b, "b", 4.0, 1024.0)                  # b's own idle, warm reuse
        assert acq(a, "a", 4.5, 512.0) is None    # all busy fleet-wide
        b.release(lease.container_id, 5.0)
        # a's heaps still hold entries for its evicted container; they must
        # be skipped, and the cold start evicts b's idle 2048 instead.
        final = acq(a, "a", 6.0, 512.0)
        assert final is not None and final.cold
        trail.append(("a-evicted", a.stats.evicted))
        trail.append(("b-evicted", b.stats.evicted))
        trail.append(snapshot(a))
        trail.append(snapshot(b))
        return trail

    def test_heap_matches_reference(self):
        assert self._drive(_BudgetedHeap) == self._drive(_BudgetedRef)

    def test_victim_is_cross_tenant(self):
        trail = self._drive(_BudgetedHeap)
        assert ("a-evicted", 1) in trail   # tenant a lost its container
        assert ("b-evicted", 1) in trail   # then b's idle went to a
