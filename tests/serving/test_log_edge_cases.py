"""Regression pins: ``ServingLog.to_experiment_log`` on degenerate runs.

An empty trace (no requests at all) and an all-shed run (requests arrived
but not one batch executed) both produce logs with empty batch arrays; the
conversion must return a well-formed — possibly outcome-less —
:class:`ExperimentLog` instead of tripping over ``max()``/``argmax`` on
empty arrays. The empty-trace guard has been in place since the evaluation
bridge landed; these tests pin both behaviours against regressions.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.serving import ServingEngine, ServingLog, WarmPoolConfig
from repro.serving.pool import WarmPool

pytestmark = pytest.mark.serving

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)


class _DenyPool(WarmPool):
    """A pool that never grants — every dispatch queues or sheds."""

    def acquire(self, now, memory_mb):
        return None


class _DenyEngine(ServingEngine):
    def _make_pool(self):
        return _DenyPool(self.pool_config)


class TestEmptyTrace:
    def test_engine_run_on_empty_trace(self):
        log = ServingEngine(CONFIG).run(np.empty(0))
        assert log.n_requests == 0
        assert log.n_served == 0
        assert log.total_cost == 0.0

    def test_conversion_returns_empty_experiment_log(self):
        log = ServingEngine(CONFIG).run(np.empty(0))
        exp = log.to_experiment_log(segment_duration=5.0)
        assert exp.outcomes == []
        assert exp.name == log.name
        assert exp.slo == log.slo

    def test_conversion_still_validates_segment_duration(self):
        log = ServingEngine(CONFIG).run(np.empty(0))
        with pytest.raises(ValueError):
            log.to_experiment_log(segment_duration=0.0)


class TestAllShedTrace:
    def _all_shed_log(self) -> ServingLog:
        ts = np.cumsum(
            np.random.default_rng(2).exponential(1 / 100.0, size=300)
        )
        log = _DenyEngine(
            CONFIG, pool=WarmPoolConfig(max_queued_batches=0),
        ).run(ts)
        assert log.n_shed == log.n_requests == 300
        assert log.dispatch_times.size == 0
        return log

    def test_conversion_survives_no_executed_batches(self):
        log = self._all_shed_log()
        exp = log.to_experiment_log(segment_duration=1.0)
        assert len(exp.outcomes) >= 1
        assert sum(o.n_requests for o in exp.outcomes) == 300
        assert all(o.latencies.size == 0 for o in exp.outcomes)
        assert all(o.total_cost == 0.0 for o in exp.outcomes)

    def test_all_shed_scorecard(self):
        log = self._all_shed_log()
        assert log.shed_rate == 1.0
        assert np.isnan(log.cost_per_request)
        assert np.isnan(log.p(95.0))
