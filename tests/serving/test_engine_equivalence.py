"""The keystone correctness property of the serving engine.

With a static configuration, infinite keep-alive, zero reconfiguration lag,
and no shedding, the discrete-event engine must reproduce the offline
simulator **bit-for-bit** — per-request latencies and per-batch costs — with
and without a concurrency limit. Everything the engine adds (warm-pool
expiry, deploy lag, admission control, drift) is then exercised on top as
behavioural deltas from that anchored baseline.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.batching.simulator import simulate
from repro.serverless.platform import ServerlessPlatform
from repro.serving import ServingEngine, WarmPoolConfig

pytestmark = pytest.mark.serving

CONFIGS = [
    BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05),
    BatchConfig(memory_mb=4096.0, batch_size=16, timeout=0.02),
]


def poisson_trace(lam: float, n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def bursty_trace(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    calm = np.cumsum(rng.exponential(0.02, size=400))
    burst = calm[-1] + np.sort(rng.uniform(0.0, 0.5, size=600))
    return np.concatenate([calm, burst])


TRACES = [poisson_trace(120.0, 1500, seed=1), bursty_trace(seed=2)]


class TestBitForBitEquivalence:
    @pytest.mark.parametrize("trace_idx", [0, 1])
    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("limit", [None, 1])
    def test_matches_offline_simulate(self, trace_idx, config, limit):
        ts = TRACES[trace_idx]
        platform = ServerlessPlatform(concurrency_limit=limit)
        ref = simulate(ts, config, platform)
        log = ServingEngine(config, platform=platform).run(ts)

        # Per-request latencies: identical floats, not merely close.
        np.testing.assert_array_equal(log.latencies, ref.latencies)
        assert log.n_shed == 0 and log.shed_batches == 0

        # Per-batch schedule and billing, aligned on dispatch order (the
        # engine records batches in start order; a bound concurrency limit
        # can start them out of dispatch order).
        order = np.argsort(log.dispatch_times, kind="stable")
        np.testing.assert_array_equal(
            log.dispatch_times[order], ref.dispatch_times
        )
        np.testing.assert_array_equal(log.batch_sizes[order], ref.batch_sizes)
        np.testing.assert_array_equal(log.batch_costs[order], ref.batch_costs)

    def test_concurrency_limit_actually_binds(self):
        # Guard against a vacuous equivalence: under the burst the limited
        # run must delay some starts past their dispatch times (and the
        # unlimited one must not).
        ts = TRACES[1]
        config = CONFIGS[0]
        limited = ServingEngine(
            config, platform=ServerlessPlatform(concurrency_limit=1)
        ).run(ts)
        assert np.any(limited.start_times > limited.dispatch_times)
        free = ServingEngine(config, platform=ServerlessPlatform()).run(ts)
        np.testing.assert_array_equal(free.start_times, free.dispatch_times)
        assert free.latencies.max() < limited.latencies.max()

    def test_infinite_keep_alive_never_expires(self):
        log = ServingEngine(
            CONFIGS[0], platform=ServerlessPlatform(concurrency_limit=3)
        ).run(TRACES[1])
        assert log.expired_containers == 0
        assert log.evicted_containers == 0
        # One cold start per pool slot actually used, the rest warm.
        assert log.cold_starts <= 3
        assert log.cold_starts + log.warm_starts == log.batch_sizes.size


class TestEngineBehaviours:
    """Deltas the offline path cannot express, each exercised in isolation."""

    def test_finite_keep_alive_creates_cold_starts(self):
        # Arrivals 10s apart with a 1s keep-alive: every batch finds the
        # pool empty again.
        ts = np.arange(0.0, 50.0, 10.0)
        config = BatchConfig(memory_mb=2048.0, batch_size=1, timeout=0.0)
        log = ServingEngine(
            config,
            platform=ServerlessPlatform(),
            pool=WarmPoolConfig(keep_alive_s=1.0),
        ).run(ts)
        assert log.cold_starts == ts.size
        assert log.warm_starts == 0
        assert log.expired_containers >= ts.size - 1
        assert log.cold_start_rate == 1.0

    def test_shedding_when_pool_and_queue_exhausted(self):
        # One container, no queueing: while a batch runs, every later
        # dispatch is shed — and shed requests carry NaN latency, no cost.
        lam = 200.0
        ts = poisson_trace(lam, 400, seed=3)
        config = BatchConfig(memory_mb=256.0, batch_size=32, timeout=0.01)
        log = ServingEngine(
            config,
            platform=ServerlessPlatform(),
            pool=WarmPoolConfig(max_containers=1, max_queued_batches=0),
        ).run(ts)
        assert log.n_shed > 0
        assert log.shed_batches > 0
        assert np.all(np.isnan(log.latencies[log.shed]))
        assert np.all(~np.isnan(log.latencies[~log.shed]))
        assert log.batch_sizes.size + log.shed_batches >= log.shed_batches
        assert 0.0 < log.shed_rate < 1.0
        # Costs are only billed for executed batches.
        assert log.batch_costs.size == log.batch_sizes.size

    def test_bounded_queue_sheds_less_than_no_queue(self):
        ts = poisson_trace(200.0, 400, seed=3)
        config = BatchConfig(memory_mb=256.0, batch_size=32, timeout=0.01)

        def run(queue_limit):
            return ServingEngine(
                config,
                platform=ServerlessPlatform(),
                pool=WarmPoolConfig(max_containers=1,
                                    max_queued_batches=queue_limit),
            ).run(ts)

        assert 0 < run(2).n_shed < run(0).n_shed
        assert run(None).n_shed == 0

    def test_served_latencies_and_log_scoring(self):
        ts = TRACES[0]
        log = ServingEngine(CONFIGS[0], platform=ServerlessPlatform()).run(
            ts, name="eq", trace_name="poisson"
        )
        ref = simulate(ts, CONFIGS[0], ServerlessPlatform())
        assert log.p(95.0) == pytest.approx(ref.latency_percentile(95.0))
        assert log.total_cost == pytest.approx(ref.total_cost)
        assert log.cost_per_request == pytest.approx(ref.cost_per_request)
        exp = log.to_experiment_log(segment_duration=5.0)
        assert exp.name == "eq"
        assert sum(o.n_requests for o in exp.outcomes) == ts.size
        assert sum(o.total_cost for o in exp.outcomes) == pytest.approx(
            ref.total_cost
        )
