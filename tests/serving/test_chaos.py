"""Chaos drills: seeded random kills, full restore, equivalence oracle.

Where ``test_checkpoint.py`` kills the engine at hand-picked boundaries,
these tests run :func:`repro.serving.chaos.run_with_crashes` — random kill
points drawn from a seeded generator, multiple crashes per run, faults and
the guardrail in the mix — and assert the completed run is bit-identical
to one that never crashed. Marked ``chaos`` (``make test-chaos``) on top
of the ``serving`` marker; they stay in tier-1 because they are fast.
"""

import numpy as np
import pytest

from repro.batching.config import BatchConfig
from repro.core.types import Decision
from repro.serverless.faults import FaultModel
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.service_profile import ColdStartModel
from repro.serving import (
    GuardrailConfig,
    ServingEngine,
    WarmPoolConfig,
    assert_serving_logs_equal,
    run_with_crashes,
)

pytestmark = [pytest.mark.serving, pytest.mark.chaos]

CONFIG = BatchConfig(memory_mb=2048.0, batch_size=8, timeout=0.05)
OTHER = BatchConfig(memory_mb=4096.0, batch_size=16, timeout=0.02)


class FlipFlopChooser:
    def __init__(self):
        self.calls = 0

    def choose(self, history, slo):
        self.calls += 1
        config = OTHER if self.calls % 2 else CONFIG
        return Decision(config=config, decision_time=1e-3,
                        diagnostics={"predicted_p95": 0.08})


def trace(seed=5, n=1200, lam=250.0):
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / lam, size=n))


def build_engine(faults=False, guardrail=False):
    platform = ServerlessPlatform(
        cold_start=ColdStartModel(),
        faults=FaultModel(failure_rate=0.2) if faults else None,
        concurrency_limit=4,
        seed=123,
    )
    return ServingEngine(
        CONFIG,
        platform=platform,
        chooser=FlipFlopChooser(),
        pool=WarmPoolConfig(keep_alive_s=2.0, max_containers=4,
                            max_queued_batches=2),
        deploy_delay_s=0.25,
        decision_interval_s=0.5,
        min_history=16,
        guardrail=(GuardrailConfig(window=32, k=2, cooldown_s=2.0)
                   if guardrail else None),
    )


class TestChaos:
    @pytest.mark.parametrize("faults", [False, True])
    @pytest.mark.parametrize("chaos_seed", [0, 1])
    def test_random_kills_are_bit_identical(self, tmp_path, faults,
                                            chaos_seed):
        ts = trace()
        baseline = build_engine(faults=faults).run(ts, record_trace=True)
        log, crashes = run_with_crashes(
            lambda: build_engine(faults=faults),
            ts,
            tmp_path / "chaos.ckpt",
            n_crashes=3,
            seed=chaos_seed,
            checkpoint_every=64,
            max_events=baseline.n_events,
            record_trace=True,
        )
        assert crashes, "the drill must actually kill the engine"
        assert_serving_logs_equal(baseline, log)

    def test_kills_with_guardrail_active(self, tmp_path):
        ts = trace()
        baseline = build_engine(guardrail=True).run(ts, record_trace=True)
        log, crashes = run_with_crashes(
            lambda: build_engine(guardrail=True),
            ts,
            tmp_path / "chaos-guard.ckpt",
            n_crashes=2,
            seed=3,
            checkpoint_every=64,
            max_events=baseline.n_events,
            record_trace=True,
        )
        assert crashes
        assert_serving_logs_equal(baseline, log)

    def test_zero_crashes_degenerates_to_a_plain_run(self, tmp_path):
        ts = trace(n=400)
        baseline = build_engine().run(ts, record_trace=True)
        log, crashes = run_with_crashes(
            lambda: build_engine(), ts, tmp_path / "none.ckpt",
            n_crashes=0, max_events=baseline.n_events, record_trace=True,
        )
        assert crashes == []
        assert_serving_logs_equal(baseline, log)
