"""Tests for the alternative surrogate architectures (ablation models)."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.batching.config import config_grid
from repro.core.alternatives import MLPSurrogate, RecurrentSurrogate, summary_statistics
from repro.core.dataset import generate_dataset
from repro.core.training import TrainConfig, train_surrogate
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(31)
GRID = config_grid(memories=(512.0, 1792.0), batch_sizes=(1, 8), timeouts=(0.0, 0.05))


class TestSummaryStatistics:
    def test_shape(self):
        stats = summary_statistics(RNG.exponential(size=(5, 32)))
        assert stats.shape == (5, MLPSurrogate.N_SUMMARY)

    def test_known_values(self):
        x = np.full((1, 16), 2.0)
        stats = summary_statistics(x)[0]
        assert stats[0] == pytest.approx(2.0)  # mean
        assert stats[1] == pytest.approx(0.0)  # cv2

    def test_1d_input(self):
        assert summary_statistics(np.ones(8)).shape == (1, MLPSurrogate.N_SUMMARY)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: RecurrentSurrogate(seq_len=16, d_model=8, cell="lstm", seed=0),
        lambda: RecurrentSurrogate(seq_len=16, d_model=8, cell="gru", seed=0),
        lambda: MLPSurrogate(seq_len=16, hidden=16, seed=0),
    ],
    ids=["lstm", "gru", "mlp"],
)
class TestAlternativeSurrogates:
    def test_forward_shape(self, factory):
        model = factory()
        out = model(Tensor(RNG.exponential(size=(4, 16))), Tensor(RNG.normal(size=(4, 3))))
        assert out.shape == (4, 6)

    def test_predict_broadcast(self, factory):
        model = factory()
        out = model.predict(RNG.exponential(size=16), RNG.normal(size=(7, 3)))
        assert out.shape == (7, 6)

    def test_trains_with_standard_loop(self, factory):
        hist = np.diff(poisson_map(200.0).sample(duration=30.0, seed=0))
        ds = generate_dataset(hist, n_samples=50, seq_len=16, configs=GRID, seed=0)
        trained = train_surrogate(
            ds, model=factory(),
            config=TrainConfig(epochs=4, batch_size=16, patience=None, seed=0),
        )
        assert trained.history.train_loss[-1] < trained.history.train_loss[0] * 1.5
        preds = trained.predict(ds.sequences[:3], ds.features[:3])
        assert preds.shape == (3, 6)


class TestValidation:
    def test_bad_cell(self):
        with pytest.raises(ValueError):
            RecurrentSurrogate(cell="transformer")

    def test_bad_seq_len(self):
        with pytest.raises(ValueError):
            RecurrentSurrogate(seq_len=0)

    def test_seq_shape_mismatch(self):
        model = RecurrentSurrogate(seq_len=16, d_model=8, seed=0)
        with pytest.raises(ValueError):
            model(Tensor(RNG.normal(size=(2, 8))), Tensor(RNG.normal(size=(2, 3))))
