"""Tests for the gamma (SLO margin) estimator."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.batching.config import config_grid
from repro.core.dataset import generate_dataset
from repro.core.surrogate import DeepBATSurrogate
from repro.core.training import TrainConfig, estimate_gamma, train_surrogate
from repro.serverless.platform import ServerlessPlatform

GRID = config_grid(memories=(512.0, 1792.0), batch_sizes=(1, 8), timeouts=(0.0, 0.05))
PLAT = ServerlessPlatform()
HIST = np.diff(poisson_map(200.0).sample(duration=60.0, seed=0))


@pytest.fixture(scope="module")
def trained():
    ds = generate_dataset(HIST, n_samples=120, seq_len=16, configs=GRID, seed=0)
    model = DeepBATSurrogate(seq_len=16, d_model=8, num_heads=2, ff_hidden=16,
                             num_layers=1, seed=0)
    return train_surrogate(ds, model=model,
                           config=TrainConfig(epochs=15, patience=None, seed=0))


class TestEstimateGamma:
    def test_nonnegative_and_finite(self, trained):
        g = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=40, seed=1)
        assert np.isfinite(g)
        assert g >= 0.0

    def test_quantile_higher_than_median_margin(self, trained):
        g90 = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=60, seed=1,
                             quantile=0.9, stress_factors=())
        g50 = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=60, seed=1,
                             quantile=0.5, stress_factors=())
        assert g90 >= g50

    def test_mape_method(self, trained):
        g = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=40, seed=1,
                           method="mape", headroom=1.0, stress_factors=())
        assert g > 0.0

    def test_invalid_method(self, trained):
        with pytest.raises(ValueError):
            estimate_gamma(trained, HIST, GRID, PLAT, method="bogus")

    def test_stress_factors_do_not_decrease_margin_much(self, trained):
        plain = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=40, seed=2,
                               stress_factors=())
        stressed = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=40, seed=2,
                                  stress_factors=(1 / 3, 3.0))
        # Stress adds harder cases; the calibrated margin should not shrink
        # by more than quantile noise.
        assert stressed >= 0.5 * plain

    def test_slo_restriction_runs(self, trained):
        g = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=60, seed=3,
                           slo=0.1, stress_factors=())
        assert g >= 0.0

    def test_deterministic_given_seed(self, trained):
        a = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=40, seed=5)
        b = estimate_gamma(trained, HIST, GRID, PLAT, n_samples=40, seed=5)
        assert a == b
