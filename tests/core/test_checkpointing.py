"""Tests for TrainedSurrogate checkpoint save/load."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.batching.config import config_grid
from repro.core.dataset import generate_dataset
from repro.core.surrogate import DeepBATSurrogate
from repro.core.training import (
    TrainConfig,
    load_trained,
    save_trained,
    train_surrogate,
)

GRID = config_grid(memories=(512.0, 1792.0), batch_sizes=(1, 8), timeouts=(0.0, 0.05))


@pytest.fixture(scope="module")
def trained():
    hist = np.diff(poisson_map(200.0).sample(duration=30.0, seed=0))
    ds = generate_dataset(hist, n_samples=50, seq_len=16, configs=GRID, seed=0)
    model = DeepBATSurrogate(seq_len=16, d_model=8, num_heads=2, ff_hidden=16,
                             num_layers=1, seed=0)
    return train_surrogate(ds, model=model,
                           config=TrainConfig(epochs=2, patience=None, seed=0))


class TestCheckpointRoundtrip:
    def test_predictions_identical_after_reload(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_trained(trained, path)
        loaded = load_trained(path)
        seq = np.abs(np.random.default_rng(0).normal(size=(3, 16))) + 0.01
        feats = np.array([[512.0, 8, 0.05]] * 3)
        np.testing.assert_allclose(
            trained.predict(seq, feats), loaded.predict(seq, feats), atol=1e-12
        )

    def test_architecture_restored(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_trained(trained, path)
        loaded = load_trained(path)
        assert loaded.model.seq_len == 16
        assert loaded.model.hyperparameters == trained.model.hyperparameters

    def test_pipeline_restored(self, trained, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_trained(trained, path)
        loaded = load_trained(path)
        assert loaded.pipeline.sequence.reference == trained.pipeline.sequence.reference
        assert loaded.pipeline.spec.percentiles == trained.pipeline.spec.percentiles

    def test_non_surrogate_model_rejected(self, trained, tmp_path):
        from repro.core.alternatives import MLPSurrogate
        from repro.core.training import TrainedSurrogate, TrainingHistory

        bogus = TrainedSurrogate(
            model=MLPSurrogate(seq_len=16, seed=0),
            pipeline=trained.pipeline,
            history=TrainingHistory(),
        )
        with pytest.raises(ValueError):
            save_trained(bogus, tmp_path / "x.npz")
