"""Tests for the SLO-aware optimizer, workload parser, and controller."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.arrival.window import latest_window
from repro.batching.config import BatchConfig, config_grid
from repro.core.dataset import generate_dataset
from repro.core.features import TargetSpec
from repro.core.optimizer import SloAwareOptimizer
from repro.core.parser import WorkloadParser
from repro.core.controller import DeepBATController
from repro.core.surrogate import DeepBATSurrogate
from repro.core.training import TrainConfig, train_surrogate

GRID = config_grid(memories=(512.0, 1024.0), batch_sizes=(1, 4, 8), timeouts=(0.0, 0.05))
SPEC = TargetSpec()


def fake_predictions(costs, p95s):
    """Build a prediction matrix with given cost and p95 columns."""
    n = len(costs)
    preds = np.ones((n, SPEC.n_outputs)) * 0.01
    preds[:, 0] = costs
    preds[:, 1 + SPEC.percentile_index(95.0)] = p95s
    return preds


class TestSloAwareOptimizer:
    def test_picks_cheapest_feasible(self):
        opt = SloAwareOptimizer(GRID, spec=SPEC)
        n = len(GRID)
        costs = np.linspace(1.0, 2.0, n)
        p95s = np.full(n, 0.05)
        p95s[0] = 0.5  # cheapest config violates
        res = opt.choose(fake_predictions(costs, p95s), slo=0.1)
        assert res.index == 1
        assert res.feasible
        assert res.n_feasible == n - 1

    def test_infeasible_falls_back_to_fastest(self):
        opt = SloAwareOptimizer(GRID, spec=SPEC)
        n = len(GRID)
        p95s = np.linspace(0.3, 0.9, n)
        res = opt.choose(fake_predictions(np.ones(n), p95s), slo=0.1)
        assert not res.feasible
        assert res.index == 0  # lowest latency

    def test_gamma_tightens_constraint(self):
        opt = SloAwareOptimizer(GRID, spec=SPEC, gamma=1.0)  # SLO/2 effective
        n = len(GRID)
        p95s = np.full(n, 0.07)  # feasible vs 0.1 but not vs 0.05
        res = opt.choose(fake_predictions(np.ones(n), p95s), slo=0.1)
        assert not res.feasible
        opt.set_gamma(0.0)
        res2 = opt.choose(fake_predictions(np.ones(n), p95s), slo=0.1)
        assert res2.feasible

    def test_validation(self):
        with pytest.raises(ValueError):
            SloAwareOptimizer([], spec=SPEC)
        with pytest.raises(ValueError):
            SloAwareOptimizer(GRID, spec=SPEC, gamma=-0.1)
        opt = SloAwareOptimizer(GRID, spec=SPEC)
        with pytest.raises(ValueError):
            opt.choose(np.ones((2, 2)), slo=0.1)
        with pytest.raises(ValueError):
            opt.choose(fake_predictions(np.ones(len(GRID)), np.ones(len(GRID))), slo=0.0)

    def test_features_align_with_configs(self):
        opt = SloAwareOptimizer(GRID, spec=SPEC)
        assert opt.features.shape == (len(GRID), 3)
        np.testing.assert_allclose(opt.features[0], GRID[0].as_array())


class TestWorkloadParser:
    def test_window_padding_then_full(self):
        p = WorkloadParser(window_length=4)
        for t in [0.0, 0.1, 0.2]:
            p.observe(t)
        assert not p.has_full_window()
        w = p.window()
        assert w.shape == (4,)
        for t in [0.3, 0.4]:
            p.observe(t)
        assert p.has_full_window()
        np.testing.assert_allclose(p.window(), [0.1, 0.1, 0.1, 0.1])

    def test_rejects_decreasing_times(self):
        p = WorkloadParser(window_length=4)
        p.observe(1.0)
        with pytest.raises(ValueError):
            p.observe(0.5)

    def test_history_bounded(self):
        p = WorkloadParser(window_length=4, max_history=10)
        p.observe_many(np.arange(100.0))
        assert p.n_observed == 10

    def test_reset(self):
        p = WorkloadParser(window_length=4)
        p.observe(0.0)
        p.reset()
        assert p.n_observed == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadParser(window_length=0)
        with pytest.raises(ValueError):
            WorkloadParser(window_length=10, max_history=5)


@pytest.fixture(scope="module")
def trained_tiny():
    hist = np.diff(poisson_map(200.0).sample(duration=60.0, seed=0))
    ds = generate_dataset(hist, n_samples=80, seq_len=16, configs=GRID, seed=0)
    model = DeepBATSurrogate(seq_len=16, d_model=8, num_heads=2, ff_hidden=16,
                             num_layers=1, seed=0)
    return train_surrogate(ds, model=model,
                           config=TrainConfig(epochs=12, patience=None, seed=0))


class TestDeepBATController:
    def test_choose_returns_grid_config(self, trained_tiny):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        hist = np.diff(poisson_map(200.0).sample(duration=10.0, seed=1))
        decision = ctrl.choose(hist, slo=0.1)
        assert decision.config in GRID
        assert decision.predictions.shape == (len(GRID), SPEC.n_outputs)
        assert decision.decision_time > 0

    def test_short_history_is_padded(self, trained_tiny):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        decision = ctrl.choose(np.array([0.01, 0.02]), slo=0.1)
        assert decision.config in GRID

    def test_gamma_passthrough(self, trained_tiny):
        ctrl = DeepBATController(trained_tiny, configs=GRID, gamma=0.5)
        assert ctrl.optimizer.gamma == 0.5
        ctrl.set_gamma(0.1)
        assert ctrl.optimizer.gamma == 0.1

    def test_window_length_mismatch_rejected(self, trained_tiny):
        with pytest.raises(ValueError):
            DeepBATController(trained_tiny, configs=GRID, window_length=99)

    def test_serve_live_loop(self, trained_tiny):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        ts = poisson_map(200.0).sample(duration=2.0, seed=2)
        batches, decisions = ctrl.serve(ts, slo=0.1, reoptimize_every=64)
        assert sum(b.size for b in batches) == ts.size
        assert len(decisions) >= 1

    def test_serve_validation(self, trained_tiny):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        with pytest.raises(ValueError):
            ctrl.serve(np.array([0.0]), slo=0.1, reoptimize_every=0)


class TestCachedGridFeatures:
    """The controller precomputes standardized grid features; the
    predict_scaled fast path must not change decisions."""

    def test_predict_scaled_matches_predict(self, trained_tiny):
        window = np.full(16, 0.005)
        feats = np.stack([c.as_array() for c in GRID])
        ref = trained_tiny.predict(window, feats)
        fast = trained_tiny.predict_scaled(window, trained_tiny.scale_features(feats))
        np.testing.assert_array_equal(ref, fast)

    def test_controller_decision_unchanged_by_caching(self, trained_tiny):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        np.testing.assert_array_equal(
            ctrl._features_scaled,
            trained_tiny.pipeline.config.transform(ctrl.optimizer.features),
        )
        hist = np.diff(poisson_map(150.0).sample(duration=10.0, seed=5))
        decision = ctrl.choose(hist, slo=0.1)
        window = latest_window(hist, ctrl.window_length)
        ref = trained_tiny.predict(window, ctrl.optimizer.features)
        np.testing.assert_array_equal(decision.predictions, ref)
