"""Tests for feature/target scaling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.features import (
    FeaturePipeline,
    SequenceScaler,
    StandardScaler,
    TargetSpec,
)

RNG = np.random.default_rng(0)


class TestStandardScaler:
    def test_transform_standardizes(self):
        x = RNG.normal(loc=5.0, scale=3.0, size=(1000, 3))
        z = StandardScaler().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_roundtrip(self):
        x = RNG.normal(size=(50, 4))
        sc = StandardScaler().fit(x)
        np.testing.assert_allclose(sc.inverse_transform(sc.transform(x)), x, atol=1e-12)

    def test_constant_column_no_nan(self):
        x = np.column_stack([np.ones(10), RNG.normal(size=10)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))

    def test_state_roundtrip(self):
        x = RNG.normal(size=(20, 2))
        a = StandardScaler().fit(x)
        b = StandardScaler()
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.transform(x), b.transform(x))


class TestSequenceScaler:
    def test_scales_by_mean(self):
        x = np.full((4, 8), 0.02)
        z = SequenceScaler().fit_transform(x)
        np.testing.assert_allclose(z, 1.0)

    def test_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            SequenceScaler().fit(np.zeros((2, 3)))

    def test_state_roundtrip(self):
        a = SequenceScaler().fit(np.full((2, 3), 0.5))
        b = SequenceScaler()
        b.load_state_dict(a.state_dict())
        assert b.reference == a.reference


class TestTargetSpec:
    def test_pack_unpack_roundtrip(self):
        spec = TargetSpec()
        row = spec.pack(2.5e-7, np.array([0.01, 0.02, 0.03, 0.04, 0.05]))
        assert row.shape == (6,)
        cost, lat = spec.unpack(row)
        assert cost == pytest.approx(0.25)  # USD per 1M requests
        np.testing.assert_allclose(lat, [0.01, 0.02, 0.03, 0.04, 0.05])

    def test_pack_batched(self):
        spec = TargetSpec(percentiles=(50.0, 95.0))
        rows = spec.pack(np.array([1e-7, 2e-7]), RNG.uniform(size=(2, 2)))
        assert rows.shape == (2, 3)

    def test_wrong_percentile_count(self):
        with pytest.raises(ValueError):
            TargetSpec().pack(1e-7, np.ones(3))

    def test_percentile_index(self):
        spec = TargetSpec()
        assert spec.percentile_index(95.0) == 3
        with pytest.raises(ValueError):
            spec.percentile_index(42.0)

    def test_n_outputs(self):
        assert TargetSpec(percentiles=(95.0,)).n_outputs == 2


class TestFeaturePipeline:
    def test_fit_transform_shapes(self):
        pipe = FeaturePipeline()
        seqs = RNG.exponential(0.01, size=(20, 16))
        feats = RNG.uniform(100, 3000, size=(20, 3))
        s, f = pipe.fit(seqs, feats).transform(seqs, feats)
        assert s.shape == seqs.shape and f.shape == feats.shape
        assert abs(s.mean() - 1.0) < 0.1

    def test_state_roundtrip(self):
        pipe = FeaturePipeline(spec=TargetSpec(percentiles=(90.0, 95.0)))
        seqs = RNG.exponential(0.01, size=(10, 8))
        feats = RNG.uniform(100, 3000, size=(10, 3))
        pipe.fit(seqs, feats)
        clone = FeaturePipeline()
        clone.load_state_dict(pipe.state_dict())
        s1, f1 = pipe.transform(seqs, feats)
        s2, f2 = clone.transform(seqs, feats)
        np.testing.assert_allclose(s1, s2)
        np.testing.assert_allclose(f1, f2)
        assert clone.spec.percentiles == (90.0, 95.0)


@given(arrays(np.float64, st.tuples(st.integers(2, 20), st.integers(1, 5)),
              elements=st.floats(0.001, 100.0)))
@settings(max_examples=30, deadline=None)
def test_standard_scaler_idempotent_stats(x):
    sc = StandardScaler().fit(x)
    z = sc.transform(x)
    assert np.all(np.isfinite(z))
    np.testing.assert_allclose(sc.inverse_transform(z), x, rtol=1e-8, atol=1e-10)
