"""Tests for the DeepBAT surrogate architecture (Fig. 3)."""

import numpy as np
import pytest

from repro.core.surrogate import DeepBATSurrogate
from repro.nn.tensor import Tensor

RNG = np.random.default_rng(9)


def tiny(seq_len=16, **kw):
    defaults = dict(seq_len=seq_len, d_model=8, num_heads=2, ff_hidden=16,
                    num_layers=1, seed=0)
    defaults.update(kw)
    return DeepBATSurrogate(**defaults)


class TestForward:
    def test_output_shape(self):
        m = tiny()
        out = m(Tensor(RNG.normal(size=(4, 16))), Tensor(RNG.normal(size=(4, 3))))
        assert out.shape == (4, 6)

    def test_custom_outputs(self):
        m = tiny(n_outputs=3)
        out = m(Tensor(RNG.normal(size=(2, 16))), Tensor(RNG.normal(size=(2, 3))))
        assert out.shape == (2, 3)

    def test_shape_validation(self):
        m = tiny()
        with pytest.raises(ValueError):
            m(Tensor(RNG.normal(size=(2, 10))), Tensor(RNG.normal(size=(2, 3))))
        with pytest.raises(ValueError):
            m(Tensor(RNG.normal(size=(2, 16))), Tensor(RNG.normal(size=(2, 5))))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            tiny(seq_len=0)
        with pytest.raises(ValueError):
            tiny(n_outputs=1)

    def test_deterministic_given_seed(self):
        seq = RNG.normal(size=(2, 16))
        feats = RNG.normal(size=(2, 3))
        a = tiny().predict(seq, feats)
        b = tiny().predict(seq, feats)
        np.testing.assert_allclose(a, b)

    def test_features_affect_output(self):
        """The configuration features must influence predictions — the
        whole point of the fused architecture."""
        m = tiny()
        seq = RNG.normal(size=(1, 16))
        out1 = m.predict(seq, np.array([[0.0, 0.0, 0.0]]))
        out2 = m.predict(seq, np.array([[2.0, -1.0, 1.0]]))
        assert not np.allclose(out1, out2)

    def test_sequence_affects_output(self):
        m = tiny()
        feats = np.zeros((1, 3))
        out1 = m.predict(RNG.normal(size=(1, 16)), feats)
        out2 = m.predict(RNG.normal(size=(1, 16)), feats)
        assert not np.allclose(out1, out2)


class TestPredictBroadcast:
    def test_one_window_many_configs(self):
        """The online fast path: one window × whole candidate grid."""
        m = tiny()
        seq = RNG.normal(size=(16,))
        feats = RNG.normal(size=(10, 3))
        out = m.predict(seq, feats)
        assert out.shape == (10, 6)

    def test_matches_manual_tiling(self):
        """predict_grid computes E_1 once; must equal the tiled forward."""
        m = tiny()
        seq = RNG.normal(size=(16,))
        feats = RNG.normal(size=(5, 3))
        fast = m.predict(seq, feats)
        tiled = m.predict(np.tile(seq, (5, 1)), feats)
        np.testing.assert_allclose(fast, tiled, atol=1e-12)

    def test_predict_grid_direct(self):
        m = tiny()
        out = m.predict_grid(RNG.normal(size=16), RNG.normal(size=(7, 3)))
        assert out.shape == (7, 6)

    def test_predict_grid_validates_length(self):
        m = tiny()
        with pytest.raises(ValueError):
            m.predict_grid(RNG.normal(size=9), RNG.normal(size=(2, 3)))


class TestGradients:
    def test_all_parameters_reachable(self):
        m = tiny()
        out = m(Tensor(RNG.normal(size=(2, 16))), Tensor(RNG.normal(size=(2, 3))))
        (out * out).mean().backward()
        for name, p in m.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"

    def test_can_overfit_single_batch(self):
        """Sanity: the architecture has enough capacity/plumbing to drive
        the loss down on one batch."""
        from repro.nn.losses import mse_loss
        from repro.nn.optim import Adam

        m = tiny()
        seq = Tensor(RNG.normal(size=(4, 16)))
        feats = Tensor(RNG.normal(size=(4, 3)))
        tgt = Tensor(RNG.uniform(0.1, 1.0, size=(4, 6)))
        opt = Adam(m.parameters(), lr=5e-3)
        first = None
        for _ in range(120):
            loss = mse_loss(m(seq, feats), tgt)
            if first is None:
                first = loss.item()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1 * first


class TestAttentionScores:
    def test_shape_and_normalization(self):
        m = tiny()
        scores = m.attention_scores(RNG.exponential(size=16))
        assert scores.shape == (16,)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores >= 0)

    def test_batched(self):
        m = tiny()
        scores = m.attention_scores(RNG.exponential(size=(3, 16)))
        assert scores.shape == (3, 16)
        np.testing.assert_allclose(scores.sum(axis=1), np.ones(3))

    def test_num_parameters_scale(self):
        small = tiny(num_layers=1)
        big = tiny(num_layers=3)
        assert big.num_parameters() > small.num_parameters()
