"""Tests for training-set generation (§III-D offline training)."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.batching.config import BatchConfig, config_grid
from repro.core.dataset import SurrogateDataset, generate_dataset, label_window
from repro.core.features import TargetSpec
from repro.serverless.platform import ServerlessPlatform
from repro.serverless.pricing import cost_per_million

HIST = np.diff(poisson_map(150.0).sample(duration=60.0, seed=0))
GRID = config_grid(memories=(512.0, 1024.0), batch_sizes=(1, 4, 8), timeouts=(0.0, 0.05))


class TestLabelWindow:
    def test_label_matches_direct_simulation(self):
        from repro.batching.simulator import simulate

        window = HIST[:64]
        cfg = BatchConfig(1024.0, 4, 0.05)
        plat = ServerlessPlatform()
        spec = TargetSpec()
        row = label_window(window, cfg, plat, spec)
        ts = np.concatenate([[0.0], np.cumsum(window)])
        res = simulate(ts, cfg, plat)
        assert row[0] == pytest.approx(cost_per_million(res.cost_per_request))
        np.testing.assert_allclose(row[1:], res.latency_percentiles(spec.percentiles))

    def test_targets_positive(self):
        row = label_window(HIST[:32], BatchConfig(512.0, 8, 0.05),
                           ServerlessPlatform(), TargetSpec())
        assert np.all(row > 0)


class TestGenerateDataset:
    def test_shapes_and_alignment(self):
        ds = generate_dataset(HIST, n_samples=30, seq_len=32, configs=GRID, seed=0)
        assert len(ds) == 30
        assert ds.sequences.shape == (30, 32)
        assert ds.features.shape == (30, 3)
        assert ds.targets.shape == (30, 6)

    def test_features_come_from_grid(self):
        ds = generate_dataset(HIST, n_samples=50, seq_len=16, configs=GRID, seed=1)
        grid_rows = {tuple(c.as_array()) for c in GRID}
        for row in ds.features:
            assert tuple(row) in grid_rows

    def test_deterministic_given_seed(self):
        a = generate_dataset(HIST, n_samples=10, seq_len=16, configs=GRID, seed=7)
        b = generate_dataset(HIST, n_samples=10, seq_len=16, configs=GRID, seed=7)
        np.testing.assert_allclose(a.targets, b.targets)

    def test_windows_are_contiguous_slices(self):
        ds = generate_dataset(HIST, n_samples=5, seq_len=16, configs=GRID, seed=2)
        hist_str = HIST.tobytes()
        for w in ds.sequences:
            assert w.tobytes() in hist_str  # exact contiguous subsequence

    def test_cost_decreases_with_batch_size_on_average(self):
        """Dataset-level sanity: the labels encode the batching economics."""
        ds = generate_dataset(HIST, n_samples=300, seq_len=64, configs=GRID, seed=3)
        b = ds.features[:, 1]
        cost = ds.targets[:, 0]
        assert cost[b >= 8].mean() < cost[b == 1].mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_dataset(HIST, n_samples=0, seq_len=16, configs=GRID)
        with pytest.raises(ValueError):
            generate_dataset(HIST, n_samples=5, seq_len=16, configs=[])
        with pytest.raises(ValueError):
            generate_dataset(HIST[:4], n_samples=5, seq_len=16, configs=GRID)


class TestSurrogateDatasetContainer:
    def test_subset_and_concat(self):
        ds = generate_dataset(HIST, n_samples=20, seq_len=16, configs=GRID, seed=4)
        sub = ds.subset(np.arange(5))
        assert len(sub) == 5
        merged = sub.concat(ds.subset(np.arange(5, 10)))
        assert len(merged) == 10

    def test_misaligned_rejected(self):
        ds = generate_dataset(HIST, n_samples=5, seq_len=16, configs=GRID, seed=5)
        with pytest.raises(ValueError):
            SurrogateDataset(ds.sequences, ds.features[:3], ds.targets, ds.spec)

    def test_wrong_target_width_rejected(self):
        ds = generate_dataset(HIST, n_samples=5, seq_len=16, configs=GRID, seed=6)
        with pytest.raises(ValueError):
            SurrogateDataset(ds.sequences, ds.features, ds.targets[:, :3], ds.spec)

    def test_concat_spec_mismatch_rejected(self):
        ds = generate_dataset(HIST, n_samples=5, seq_len=16, configs=GRID, seed=6)
        other = SurrogateDataset(
            ds.sequences, ds.features, ds.targets[:, :2],
            TargetSpec(percentiles=(95.0,)),
        )
        with pytest.raises(ValueError):
            ds.concat(other)


class TestBatchedLabeling:
    """label_windows: the batched fast path behind generate_dataset."""

    def test_matches_per_sample_label_window(self):
        from repro.core.dataset import label_windows

        plat = ServerlessPlatform()
        spec = TargetSpec()
        windows = np.stack([HIST[i : i + 32] for i in range(6)])
        configs = [GRID[i % len(GRID)] for i in range(6)]
        batched = label_windows(windows, configs, plat, spec)
        for i in range(6):
            np.testing.assert_array_equal(
                batched[i], label_window(windows[i], configs[i], plat, spec)
            )

    def test_alignment_validation(self):
        from repro.core.dataset import label_windows

        with pytest.raises(ValueError):
            label_windows(np.ones((3, 8)), [GRID[0]], ServerlessPlatform(), TargetSpec())


class TestParallelLabeling:
    """workers=N must be bit-identical to serial labeling (same seed)."""

    def test_parallel_equals_serial(self):
        serial = generate_dataset(HIST, n_samples=24, seq_len=16, configs=GRID, seed=11)
        parallel = generate_dataset(
            HIST, n_samples=24, seq_len=16, configs=GRID, seed=11, workers=2
        )
        np.testing.assert_array_equal(serial.sequences, parallel.sequences)
        np.testing.assert_array_equal(serial.features, parallel.features)
        np.testing.assert_array_equal(serial.targets, parallel.targets)

    def test_parallel_equals_serial_with_cold_starts(self):
        """Regression: cold-start sampling must derive per-sample
        generators (SeedSequence spawn keys), not consume the platform's
        shared mutable stream — otherwise worker counts change labels."""
        from repro.serverless.service_profile import ColdStartModel

        def plat():
            return ServerlessPlatform(
                cold_start=ColdStartModel(cold_probability=0.5), seed=13
            )

        kw = dict(n_samples=24, seq_len=16, configs=GRID, seed=11)
        serial = generate_dataset(HIST, platform=plat(), **kw)
        two = generate_dataset(HIST, platform=plat(), workers=2, **kw)
        three = generate_dataset(HIST, platform=plat(), workers=3, **kw)
        np.testing.assert_array_equal(serial.targets, two.targets)
        np.testing.assert_array_equal(serial.targets, three.targets)
        # Cold starts actually fired (labels differ from the warm platform).
        warm = generate_dataset(HIST, platform=ServerlessPlatform(), **kw)
        assert not np.array_equal(serial.targets, warm.targets)

    def test_cold_start_labels_independent_of_platform_stream_state(self):
        """A platform whose shared RNG was already consumed labels
        identically — per-sample determinism, not stream order."""
        from repro.serverless.service_profile import ColdStartModel

        kw = dict(n_samples=12, seq_len=16, configs=GRID, seed=19)
        fresh = ServerlessPlatform(
            cold_start=ColdStartModel(cold_probability=0.5), seed=13
        )
        dirty = ServerlessPlatform(
            cold_start=ColdStartModel(cold_probability=0.5), seed=13
        )
        dirty._rng.random(4096)
        a = generate_dataset(HIST, platform=fresh, **kw)
        b = generate_dataset(HIST, platform=dirty, **kw)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_labeling_telemetry(self):
        from repro.telemetry import MetricsRegistry, use_registry

        with use_registry(MetricsRegistry()) as reg:
            generate_dataset(HIST, n_samples=8, seq_len=16, configs=GRID, seed=0)
        assert reg.counter("dataset.labels").value == 8
        assert reg.histogram("dataset.label_time").count == 1
        assert reg.gauge("dataset.workers").value == 1
