"""Degraded-mode serving: controllers fall back to the last known-good
decision when the history window is corrupted or choose() raises."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.baseline.controller import BATCHController
from repro.batching.config import config_grid
from repro.core.controller import DeepBATController
from repro.core.dataset import generate_dataset
from repro.core.surrogate import DeepBATSurrogate
from repro.core.training import TrainConfig, train_surrogate
from repro.core.types import history_fault
from repro.telemetry.metrics import MetricsRegistry, use_registry

pytestmark = pytest.mark.faults

GRID = config_grid(memories=(512.0, 1024.0), batch_sizes=(1, 4, 8),
                   timeouts=(0.0, 0.05))


@pytest.fixture(scope="module")
def trained_tiny():
    hist = np.diff(poisson_map(200.0).sample(duration=60.0, seed=0))
    ds = generate_dataset(hist, n_samples=80, seq_len=16, configs=GRID, seed=0)
    model = DeepBATSurrogate(seq_len=16, d_model=8, num_heads=2, ff_hidden=16,
                             num_layers=1, seed=0)
    return train_surrogate(ds, model=model,
                           config=TrainConfig(epochs=8, patience=None, seed=0))


@pytest.fixture
def good_history():
    return np.diff(poisson_map(200.0).sample(duration=10.0, seed=1))


class TestHistoryFault:
    def test_clean_history(self):
        assert history_fault(np.array([0.1, 0.2, 0.3])) is None

    def test_nan(self):
        assert "NaN" in history_fault(np.array([0.1, np.nan, 0.3]))

    def test_inf(self):
        assert history_fault(np.array([0.1, np.inf])) is not None

    def test_negative(self):
        assert "negative" in history_fault(np.array([0.1, -0.2, 0.3]))


class TestDeepBATDegradedMode:
    def test_corrupted_history_without_anchor_raises(self, trained_tiny):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        with pytest.raises(ValueError, match="NaN"):
            ctrl.choose(np.array([0.1, np.nan, 0.3]), slo=0.1)

    def test_nan_history_falls_back(self, trained_tiny, good_history):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        good = ctrl.choose(good_history, slo=0.1)
        bad = good_history.copy()
        bad[3] = np.nan
        degraded = ctrl.choose(bad, slo=0.1)
        assert degraded.degraded
        assert degraded.config == good.config
        assert "NaN" in degraded.diagnostics["reason"]

    def test_negative_interarrivals_fall_back(self, trained_tiny, good_history):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        good = ctrl.choose(good_history, slo=0.1)
        bad = good_history.copy()
        bad[0] = -1.0
        degraded = ctrl.choose(bad, slo=0.1)
        assert degraded.degraded
        assert degraded.config == good.config

    def test_internal_raise_falls_back(self, trained_tiny, good_history,
                                       monkeypatch):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        good = ctrl.choose(good_history, slo=0.1)

        def boom(*args, **kwargs):
            raise RuntimeError("surrogate exploded")

        monkeypatch.setattr(ctrl.surrogate, "predict_scaled", boom)
        degraded = ctrl.choose(good_history, slo=0.1)
        assert degraded.degraded
        assert degraded.config == good.config
        assert "RuntimeError" in degraded.diagnostics["reason"]

    def test_internal_raise_without_anchor_propagates(self, trained_tiny,
                                                      good_history,
                                                      monkeypatch):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        monkeypatch.setattr(
            ctrl.surrogate, "predict_scaled",
            lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("surrogate exploded")
            ),
        )
        with pytest.raises(RuntimeError, match="surrogate exploded"):
            ctrl.choose(good_history, slo=0.1)

    def test_anchor_survives_degraded_run(self, trained_tiny, good_history):
        """The known-good anchor must not be overwritten by degraded
        decisions — a long run of bad windows keeps the same config."""
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        good = ctrl.choose(good_history, slo=0.1)
        bad = np.full(16, np.nan)
        for _ in range(3):
            degraded = ctrl.choose(bad, slo=0.1)
            assert degraded.config == good.config
        assert ctrl.last_decision is good

    def test_recovers_after_degradation(self, trained_tiny, good_history):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        ctrl.choose(good_history, slo=0.1)
        ctrl.choose(np.full(16, np.nan), slo=0.1)
        fresh = ctrl.choose(good_history, slo=0.1)
        assert not fresh.degraded
        assert ctrl.last_decision is fresh

    def test_degraded_counter(self, trained_tiny, good_history):
        ctrl = DeepBATController(trained_tiny, configs=GRID)
        ctrl.choose(good_history, slo=0.1)
        with use_registry(MetricsRegistry()) as reg:
            ctrl.choose(np.full(16, np.nan), slo=0.1)
            ctrl.choose(np.full(16, np.nan), slo=0.1)
        assert reg.counter("fault.degraded_decisions").value == 2


class TestBATCHDegradedMode:
    def _history(self):
        return np.diff(poisson_map(150.0).sample(duration=10.0, seed=2))

    def test_short_history_without_anchor_raises(self):
        ctrl = BATCHController(configs=GRID)
        with pytest.raises(ValueError, match="at least"):
            ctrl.choose(np.full(5, 0.01), slo=0.1)

    def test_corrupted_history_falls_back(self):
        ctrl = BATCHController(configs=GRID)
        good = ctrl.choose(self._history(), slo=0.1)
        bad = self._history()
        bad[1] = np.nan
        degraded = ctrl.choose(bad, slo=0.1)
        assert degraded.degraded
        assert degraded.config == good.config

    def test_short_history_falls_back_after_anchor(self):
        ctrl = BATCHController(configs=GRID)
        good = ctrl.choose(self._history(), slo=0.1)
        degraded = ctrl.choose(np.full(5, 0.01), slo=0.1)
        assert degraded.degraded
        assert degraded.config == good.config
        assert "at least" in degraded.diagnostics["reason"]

    def test_invalid_slo_always_raises(self):
        ctrl = BATCHController(configs=GRID)
        ctrl.choose(self._history(), slo=0.1)
        with pytest.raises(ValueError, match="slo"):
            ctrl.choose(self._history(), slo=0.0)

    def test_internal_raise_falls_back(self, monkeypatch):
        ctrl = BATCHController(configs=GRID)
        good = ctrl.choose(self._history(), slo=0.1)
        monkeypatch.setattr(
            "repro.baseline.controller.fit_map",
            lambda x: (_ for _ in ()).throw(RuntimeError("fit diverged")),
        )
        degraded = ctrl.choose(self._history(), slo=0.1)
        assert degraded.degraded
        assert "RuntimeError" in degraded.diagnostics["reason"]
        assert degraded.config == good.config
