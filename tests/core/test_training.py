"""Tests for surrogate training, fine-tuning, and the gamma factor."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.batching.config import config_grid
from repro.core.dataset import generate_dataset
from repro.core.surrogate import DeepBATSurrogate
from repro.core.training import (
    TrainConfig,
    compute_gamma,
    fine_tune,
    train_surrogate,
)

GRID = config_grid(memories=(512.0, 1792.0), batch_sizes=(1, 8), timeouts=(0.0, 0.05))
HIST = np.diff(poisson_map(200.0).sample(duration=60.0, seed=0))


def tiny_model():
    return DeepBATSurrogate(seq_len=16, d_model=8, num_heads=2, ff_hidden=16,
                            num_layers=1, seed=0)


def tiny_dataset(seed=0, n=60):
    return generate_dataset(HIST, n_samples=n, seq_len=16, configs=GRID, seed=seed)


class TestTrainSurrogate:
    def test_loss_decreases(self):
        ds = tiny_dataset()
        trained = train_surrogate(ds, model=tiny_model(),
                                  config=TrainConfig(epochs=8, patience=None, seed=0))
        h = trained.history
        assert len(h.train_loss) == 8
        assert h.train_loss[-1] < h.train_loss[0]

    def test_early_stopping(self):
        ds = tiny_dataset()
        trained = train_surrogate(ds, model=tiny_model(),
                                  config=TrainConfig(epochs=200, patience=2, seed=0))
        assert len(trained.history.train_loss) < 200

    def test_best_weights_restored(self):
        ds = tiny_dataset()
        trained = train_surrogate(ds, model=tiny_model(),
                                  config=TrainConfig(epochs=6, patience=None, seed=0))
        # Validation loss of the returned model equals the best epoch's.
        assert trained.history.best_epoch <= len(trained.history.val_loss) - 1

    def test_predictions_in_target_units(self):
        ds = tiny_dataset(n=80)
        trained = train_surrogate(ds, model=tiny_model(),
                                  config=TrainConfig(epochs=15, patience=None, seed=0))
        preds = trained.predict(ds.sequences[:5], ds.features[:5])
        assert preds.shape == (5, 6)
        # After training on positive O(0.01-1) targets, predictions should
        # land in a sane band (not wildly off-scale).
        assert np.all(preds > -1.0) and np.all(preds < 10.0)

    def test_seq_len_mismatch_rejected(self):
        ds = tiny_dataset()
        model = DeepBATSurrogate(seq_len=32, d_model=8, num_heads=2, seed=0)
        with pytest.raises(ValueError):
            train_surrogate(ds, model=model)

    def test_slo_weighting_runs(self):
        ds = tiny_dataset()
        cfg = TrainConfig(epochs=3, patience=None, slo=0.05, slo_penalty=4.0, seed=0)
        trained = train_surrogate(ds, model=tiny_model(), config=cfg)
        assert len(trained.history.train_loss) == 3

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(val_fraction=1.5)


class TestFineTune:
    def test_reuses_pipeline_and_improves_ood_fit(self):
        ds = tiny_dataset()
        trained = train_surrogate(ds, model=tiny_model(),
                                  config=TrainConfig(epochs=10, patience=None, seed=0))
        ref_before = trained.pipeline.sequence.reference

        ood_hist = np.diff(
            mmpp2_with_burstiness(40.0, 3.0, 5.0, 0.2).sample(duration=120.0, seed=1)
        )
        ood = generate_dataset(ood_hist, n_samples=60, seq_len=16, configs=GRID, seed=1)

        def mape(t, d):
            p = t.predict(d.sequences, d.features)
            return np.mean(np.abs(p - d.targets) / np.maximum(np.abs(d.targets), 1e-8))

        before = mape(trained, ood)
        tuned = fine_tune(trained, ood, epochs=10, lr=1e-3)
        after = mape(tuned, ood)
        assert tuned.pipeline.sequence.reference == ref_before  # pipeline reused
        assert after < before  # OOD error shrinks (§III-D)


class TestComputeGamma:
    def test_zero_for_perfect_prediction(self):
        p = np.array([0.1, 0.2])
        assert compute_gamma(p, p) == 0.0

    def test_matches_mape_definition(self):
        pred = np.array([0.11])
        true = np.array([0.10])
        assert compute_gamma(pred, true) == pytest.approx(0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            compute_gamma(np.ones(2), np.ones(3))
