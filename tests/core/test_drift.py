"""Tests for OOD drift detection (the §III-D fine-tuning trigger)."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.arrival.window import latest_window
from repro.core.drift import (
    WorkloadDriftDetector,
    prediction_drift,
    window_statistics,
)

TRAIN = np.diff(poisson_map(150.0).sample(duration=120.0, seed=0))
L = 64


class TestWindowStatistics:
    def test_shape(self):
        stats = window_statistics(np.random.default_rng(0).exponential(size=(5, 32)))
        assert stats.shape == (5, 4)

    def test_poisson_window_features(self):
        rng = np.random.default_rng(1)
        stats = window_statistics(rng.exponential(0.01, size=(1, 5000)))[0]
        assert stats[0] == pytest.approx(np.log(0.01), abs=0.1)  # log mean
        assert stats[1] == pytest.approx(1.0, abs=0.15)  # CV^2
        assert abs(stats[2]) < 0.1  # no autocorrelation

    def test_1d_input(self):
        assert window_statistics(np.ones(16)).shape == (1, 4)


class TestWorkloadDriftDetector:
    @pytest.fixture()
    def detector(self):
        return WorkloadDriftDetector().fit(TRAIN, window_length=L)

    def test_in_distribution_not_flagged(self, detector):
        fresh = np.diff(poisson_map(150.0).sample(duration=20.0, seed=9))
        window = latest_window(fresh, L)
        assert not detector.is_drifted(window)
        assert detector.score(window) == 0.0

    def test_rate_shift_flagged(self, detector):
        slow = np.diff(poisson_map(3.0).sample(n_arrivals=L + 1, seed=2))
        assert detector.is_drifted(latest_window(slow, L))

    def test_burstiness_shift_flagged(self, detector):
        bursty = np.diff(
            mmpp2_with_burstiness(150.0, 4.0, 5.0, 0.1).sample(duration=30.0, seed=3)
        )
        window = latest_window(bursty, L)
        assert detector.score(window) > 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WorkloadDriftDetector().score(np.ones(L))

    def test_too_little_training_data(self):
        with pytest.raises(ValueError):
            WorkloadDriftDetector().fit(TRAIN[: L + 5], window_length=L)

    def test_score_bounded(self, detector):
        rng = np.random.default_rng(4)
        for _ in range(5):
            s = detector.score(rng.exponential(0.01, size=L))
            assert 0.0 <= s <= 1.0


class TestPredictionDrift:
    def test_triggers_on_large_error(self):
        assert prediction_drift(recent_error=0.3, baseline_error=0.05)

    def test_quiet_when_error_stable(self):
        assert not prediction_drift(recent_error=0.06, baseline_error=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            prediction_drift(-1.0, 0.1)
        with pytest.raises(ValueError):
            prediction_drift(0.1, 0.1, tolerance=1.0)
