"""Tests for OOD drift detection (the §III-D fine-tuning trigger)."""

import numpy as np
import pytest

from repro.arrival.map_process import poisson_map
from repro.arrival.mmpp import mmpp2_with_burstiness
from repro.arrival.window import latest_window
from repro.core.drift import (
    WorkloadDriftDetector,
    prediction_drift,
    window_statistics,
)

TRAIN = np.diff(poisson_map(150.0).sample(duration=120.0, seed=0))
L = 64


class TestWindowStatistics:
    def test_shape(self):
        stats = window_statistics(np.random.default_rng(0).exponential(size=(5, 32)))
        assert stats.shape == (5, 4)

    def test_poisson_window_features(self):
        rng = np.random.default_rng(1)
        stats = window_statistics(rng.exponential(0.01, size=(1, 5000)))[0]
        assert stats[0] == pytest.approx(np.log(0.01), abs=0.1)  # log mean
        assert stats[1] == pytest.approx(1.0, abs=0.15)  # CV^2
        assert abs(stats[2]) < 0.1  # no autocorrelation

    def test_1d_input(self):
        assert window_statistics(np.ones(16)).shape == (1, 4)


class TestWorkloadDriftDetector:
    @pytest.fixture()
    def detector(self):
        return WorkloadDriftDetector().fit(TRAIN, window_length=L)

    def test_in_distribution_not_flagged(self, detector):
        fresh = np.diff(poisson_map(150.0).sample(duration=20.0, seed=9))
        window = latest_window(fresh, L)
        assert not detector.is_drifted(window)
        assert detector.score(window) == 0.0

    def test_rate_shift_flagged(self, detector):
        slow = np.diff(poisson_map(3.0).sample(n_arrivals=L + 1, seed=2))
        assert detector.is_drifted(latest_window(slow, L))

    def test_burstiness_shift_flagged(self, detector):
        bursty = np.diff(
            mmpp2_with_burstiness(150.0, 4.0, 5.0, 0.1).sample(duration=30.0, seed=3)
        )
        window = latest_window(bursty, L)
        assert detector.score(window) > 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            WorkloadDriftDetector().score(np.ones(L))

    def test_too_little_training_data(self):
        with pytest.raises(ValueError):
            WorkloadDriftDetector().fit(TRAIN[: L + 5], window_length=L)

    def test_score_bounded(self, detector):
        rng = np.random.default_rng(4)
        for _ in range(5):
            s = detector.score(rng.exponential(0.01, size=L))
            assert 0.0 <= s <= 1.0


class TestWindowLengthValidation:
    """Regression: ``fit`` must record the window length it calibrated on,
    and ``score`` must reject windows of any other length — the envelope's
    per-feature quantiles are statistics *of that length* (a 32-sample CV²
    and a 256-sample CV² are differently distributed), so scoring a
    mismatched window silently miscalibrates the drift threshold."""

    def test_fit_records_window_length(self):
        detector = WorkloadDriftDetector().fit(TRAIN, window_length=L)
        assert detector.window_length_ == L

    def test_score_rejects_mismatched_window(self):
        detector = WorkloadDriftDetector().fit(TRAIN, window_length=L)
        with pytest.raises(ValueError, match="does not match"):
            detector.score(np.ones(L // 2))
        with pytest.raises(ValueError, match="does not match"):
            detector.is_drifted(np.ones(2 * L))
        # The fitted length still scores.
        assert 0.0 <= detector.score(np.ones(L)) <= 1.0

    def test_state_round_trips_window_length(self):
        fitted = WorkloadDriftDetector().fit(TRAIN, window_length=L)
        restored = WorkloadDriftDetector()
        restored.set_state(fitted.get_state())
        assert restored.window_length_ == L
        with pytest.raises(ValueError, match="does not match"):
            restored.score(np.ones(L // 2))

    def test_old_state_without_window_length_still_scores(self):
        # Snapshots written before the length was recorded lack the key:
        # restore must not fail, and scoring falls back to unvalidated
        # (the pre-fix behaviour) rather than rejecting every window.
        fitted = WorkloadDriftDetector().fit(TRAIN, window_length=L)
        state = fitted.get_state()
        del state["window_length"]
        restored = WorkloadDriftDetector()
        restored.set_state(state)
        assert restored.window_length_ is None
        assert 0.0 <= restored.score(np.ones(L // 2)) <= 1.0


class TestPredictionDrift:
    def test_triggers_on_large_error(self):
        assert prediction_drift(recent_error=0.3, baseline_error=0.05)

    def test_quiet_when_error_stable(self):
        assert not prediction_drift(recent_error=0.06, baseline_error=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            prediction_drift(-1.0, 0.1)
        with pytest.raises(ValueError):
            prediction_drift(0.1, 0.1, tolerance=1.0)
