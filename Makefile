# Developer entry points. Everything runs from the repo root with the
# in-tree package (PYTHONPATH=src) — no install step required.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test test-faults test-serving test-fleet test-chaos test-prewarm test-gen test-outage bench-smoke bench bench-perf bench-serving lint

## Tier-1: the fast unit/integration suite (excludes the `bench` marker).
test:
	$(PYTEST) -x -q -m "not bench"

## Fault-injection, retry, and degraded-mode serving tests only.
test-faults:
	$(PYTEST) -q -m faults

## Serving-runtime tests only (engine, warm pool, drift triggers).
test-serving:
	$(PYTEST) -q -m serving

## Fleet serving tests: multi-endpoint engine, shared container budget,
## cross-tenant scheduler, and the fleet config loader.
test-fleet:
	$(PYTEST) -q -m fleet

## Crash drills: random kills + checkpoint restore + equivalence oracle.
test-chaos:
	$(PYTEST) -q -m chaos

## Predictive prewarming: forecasters, policy math, engine integration,
## the Alibaba-like cold-start evaluation, and the oracle upper bound.
test-prewarm:
	$(PYTEST) -q -m prewarm

## Token-streaming generation: the prefill/decode service model,
## continuous batching vs the size/timeout buffer, goodput SLOs, and the
## legacy bit-identity pin.
test-gen:
	$(PYTEST) -q -m gen

## Correlated outages + graceful degradation: outage windows, container
## crashes, stragglers, cold-start backoff, hedging, brownout, failover.
test-outage:
	$(PYTEST) -q -m outage

## Quick benchmark sanity check: the §IV-F decision-time speedup table.
## First run trains the shared workbench models; later runs load the cache.
bench-smoke:
	$(PYTEST) -q benchmarks/test_speedup_table.py

## Full figure/table reproduction suite (slow; writes benchmarks/results/).
bench:
	$(PYTEST) -q benchmarks

## All perf microbenchmarks: refreshes BENCH_simcore.json and
## BENCH_serving.json, and enforces their speedup floors.
bench-perf:
	$(PYTEST) -q -s -m perf benchmarks/test_perf_simcore.py benchmarks/test_perf_serving.py

## Serving-loop microbenchmarks only: engine fast path vs the stepwise
## reference, warm-pool churn, fleet lane-key heap vs scan. Refreshes
## BENCH_serving.json and enforces the >=3x events/sec floor.
bench-serving:
	$(PYTEST) -q -s -m perf benchmarks/test_perf_serving.py

## Syntax check of every tree we ship (no third-party linter in the image).
lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
